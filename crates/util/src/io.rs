//! Minimal binary serialization primitives for the checkpoint subsystem.
//!
//! Everything is little-endian and fixed-width; floating-point values travel
//! as their IEEE-754 bit patterns ([`f64::to_bits`]) so a write→read
//! round-trip is bitwise exact — the property the checkpoint conformance
//! harness (`tests/checkpoint_replay.rs`) is built on. The reader never
//! panics on malformed input: every `take_*` returns a [`ReadError`] carrying
//! the offset where the buffer ran out, which the checkpoint layer converts
//! into its typed, section-naming errors.

use crate::real3::Real3;

/// Error returned when a [`ByteReader`] runs out of bytes mid-value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadError {
    /// Byte offset at which the read was attempted.
    pub offset: usize,
    /// Bytes the value needed.
    pub needed: usize,
    /// Bytes actually left in the buffer.
    pub available: usize,
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "truncated input at offset {}: needed {} bytes, {} available",
            self.offset, self.needed, self.available
        )
    }
}

impl std::error::Error for ReadError {}

/// Growable little-endian byte sink.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The accumulated bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (bitwise exact).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a [`Real3`] as three bit-exact `f64`s.
    pub fn put_real3(&mut self, v: Real3) {
        self.put_f64(v.x());
        self.put_f64(v.y());
        self.put_f64(v.z());
    }

    /// Appends raw bytes without a length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a UTF-8 string as `u32` length + bytes.
    pub fn put_str(&mut self, v: &str) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }
}

/// Cursor over a byte slice; every read is bounds-checked and returns
/// [`ReadError`] instead of panicking on truncation.
#[derive(Debug, Clone, Copy)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Current byte offset from the start of the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True if every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ReadError> {
        if self.remaining() < n {
            return Err(ReadError {
                offset: self.pos,
                needed: n,
                available: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, ReadError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, ReadError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, ReadError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern (bitwise exact).
    pub fn take_f64(&mut self) -> Result<f64, ReadError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a [`Real3`] written by [`ByteWriter::put_real3`].
    pub fn take_real3(&mut self) -> Result<Real3, ReadError> {
        let x = self.take_f64()?;
        let y = self.take_f64()?;
        let z = self.take_f64()?;
        Ok(Real3::new(x, y, z))
    }

    /// Reads `n` raw bytes.
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], ReadError> {
        self.take(n)
    }

    /// Reads a string written by [`ByteWriter::put_str`]. Invalid UTF-8 is
    /// reported as a truncation-style error at the string's offset (the
    /// checkpoint layer treats any malformed payload identically).
    pub fn take_str(&mut self) -> Result<String, ReadError> {
        let offset = self.pos;
        let len = self.take_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ReadError {
            offset,
            needed: len,
            available: len,
        })
    }
}

/// FNV-1a 64-bit hash — the checkpoint format's section checksum. Not
/// cryptographic; it detects truncation and bit corruption, which is all the
/// failure-injection contract asks of it.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let mut w = ByteWriter::new();
        w.put_u8(0xab);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_real3(Real3::new(1.5, -2.25, 3.125));
        w.put_str("checkpoint");
        w.put_bytes(&[1, 2, 3]);

        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 0xab);
        assert_eq!(r.take_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.take_f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(r.take_real3().unwrap(), Real3::new(1.5, -2.25, 3.125));
        assert_eq!(r.take_str().unwrap(), "checkpoint");
        assert_eq!(r.take_bytes(3).unwrap(), &[1, 2, 3]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bytes = [1u8, 2, 3];
        let mut r = ByteReader::new(&bytes);
        let err = r.take_u64().unwrap_err();
        assert_eq!(err.offset, 0);
        assert_eq!(err.needed, 8);
        assert_eq!(err.available, 3);
        // The failed read consumed nothing.
        assert_eq!(r.remaining(), 3);
    }

    #[test]
    fn truncated_string_is_an_error() {
        let mut w = ByteWriter::new();
        w.put_str("hello");
        let mut bytes = w.into_bytes();
        bytes.truncate(bytes.len() - 2);
        let mut r = ByteReader::new(&bytes);
        assert!(r.take_str().is_err());
    }

    #[test]
    fn fnv_detects_single_bit_flips() {
        let data = b"the quick brown fox";
        let base = fnv1a64(data);
        let mut copy = data.to_vec();
        for byte in 0..copy.len() {
            for bit in 0..8 {
                copy[byte] ^= 1 << bit;
                assert_ne!(fnv1a64(&copy), base, "flip at {byte}:{bit}");
                copy[byte] ^= 1 << bit;
            }
        }
        assert_eq!(fnv1a64(&copy), base);
    }
}
