//! # bdm-util
//!
//! Shared utilities for the `biodynamo-rs` workspace: 3-D vector math,
//! deterministic random number generation, parallel prefix sums, descriptive
//! statistics, wall-clock timing, process memory introspection, and plain-text
//! table/CSV emitters used by the benchmark harness.
//!
//! Everything in this crate is dependency-light and engine-agnostic; the
//! simulation crates build on top of it.

pub mod io;
pub mod memory;
pub mod prefix_sum;
pub mod real3;
pub mod rng;
pub mod send_ptr;
pub mod stats;
pub mod table;
pub mod timing;

pub use io::{fnv1a64, ByteReader, ByteWriter, ReadError};
pub use memory::{format_bytes, peak_rss_bytes, rss_bytes};
pub use prefix_sum::{inclusive_prefix_sum_parallel, prefix_sum_exclusive, prefix_sum_inclusive};
pub use real3::Real3;
pub use rng::SimRng;
pub use stats::{geometric_mean, median, Summary};
pub use table::{write_csv, Table};
pub use timing::{TimeBuckets, Timer};
