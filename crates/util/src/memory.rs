//! Process memory introspection.
//!
//! The paper reports memory consumption for Figures 6, 8, 9, 11, and 13.
//! On Linux we read `VmRSS` / `VmHWM` from `/proc/self/status`; on other
//! platforms the functions return `None` and the harness reports `n/a`.

/// Parses a `Vm...:  <kB> kB` line from `/proc/self/status`.
fn read_status_kb(key: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(key) {
            let rest = rest.trim_start_matches(':').trim();
            let kb: u64 = rest.split_whitespace().next()?.parse().ok()?;
            return Some(kb);
        }
    }
    None
}

/// Current resident set size in bytes, if the platform exposes it.
pub fn rss_bytes() -> Option<u64> {
    read_status_kb("VmRSS").map(|kb| kb * 1024)
}

/// Peak resident set size ("high water mark") in bytes.
///
/// Some sandboxed kernels (e.g. gVisor) expose `VmRSS` but not `VmHWM`; in
/// that case this falls back to the *current* RSS, which under-reports peaks
/// but keeps the benchmark harness functional.
pub fn peak_rss_bytes() -> Option<u64> {
    read_status_kb("VmHWM")
        .map(|kb| kb * 1024)
        .or_else(rss_bytes)
}

/// Formats a byte count with binary units (`KiB`, `MiB`, `GiB`).
pub fn format_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit + 1 < UNITS.len() {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.2} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_is_positive_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = rss_bytes().expect("linux exposes VmRSS");
            assert!(rss > 0);
            let peak = peak_rss_bytes().expect("peak falls back to rss on linux");
            assert!(
                peak >= rss / 2,
                "peak {peak} should be near/above rss {rss}"
            );
        }
    }

    #[test]
    fn rss_grows_with_allocation() {
        if cfg!(target_os = "linux") {
            let before = rss_bytes().unwrap();
            // Touch 64 MiB so it is actually resident.
            let v = vec![1u8; 64 << 20];
            std::hint::black_box(&v);
            let after = rss_bytes().unwrap();
            assert!(
                after >= before + (32 << 20),
                "rss should grow by ~64MiB: before={before} after={after}"
            );
        }
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.00 KiB");
        assert_eq!(format_bytes(5 * 1024 * 1024), "5.00 MiB");
        assert_eq!(format_bytes(3 * 1024 * 1024 * 1024), "3.00 GiB");
    }
}
