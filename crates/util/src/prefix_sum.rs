//! Serial and parallel prefix sums.
//!
//! The agent sorting/balancing algorithm (paper Section 4.2, step F) and the
//! parallel removal algorithm (Section 3.2, step 4) both rely on prefix sums
//! over per-box / per-thread counters. The parallel variant is the classic
//! two-pass block algorithm (work-efficient in the sense of Ladner & Fischer,
//! the paper's citation \[36\]): per-block sums in parallel, a serial scan over
//! the tiny block-sum array, then a parallel fix-up pass.

use rayon::prelude::*;

/// In-place exclusive prefix sum; returns the total.
///
/// `[3, 1, 4]` becomes `[0, 3, 4]` and `8` is returned.
pub fn prefix_sum_exclusive(values: &mut [usize]) -> usize {
    let mut acc = 0usize;
    for v in values.iter_mut() {
        let next = acc + *v;
        *v = acc;
        acc = next;
    }
    acc
}

/// In-place inclusive prefix sum; returns the total (= last element).
pub fn prefix_sum_inclusive(values: &mut [usize]) -> usize {
    let mut acc = 0usize;
    for v in values.iter_mut() {
        acc += *v;
        *v = acc;
    }
    acc
}

/// Counter widths the parallel block scan is instantiated for.
pub trait PrefixElem: Copy + Send + Sync {
    /// The additive identity.
    fn zero() -> Self;
    /// Element addition (totals are guaranteed to fit by the caller).
    fn add(self, rhs: Self) -> Self;
    /// Narrowing conversion from an accumulated block offset.
    fn from_usize(v: usize) -> Self;
    /// Widening conversion for block totals.
    fn as_usize(self) -> usize;
}

impl PrefixElem for usize {
    fn zero() -> Self {
        0
    }
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }
    fn from_usize(v: usize) -> Self {
        v
    }
    fn as_usize(self) -> usize {
        self
    }
}

impl PrefixElem for u32 {
    fn zero() -> Self {
        0
    }
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }
    fn from_usize(v: usize) -> Self {
        v as u32
    }
    fn as_usize(self) -> usize {
        self as usize
    }
}

/// The block-scan shared by both public widths: inclusive scan within each
/// block, exclusive scan over the tiny block-total array, parallel offset
/// fix-up. Falls back to one serial scan for small inputs where parallelism
/// cannot pay for itself.
fn inclusive_scan_parallel<T: PrefixElem>(values: &mut [T]) -> usize {
    const MIN_PARALLEL: usize = 1 << 14;
    let serial = |chunk: &mut [T]| {
        let mut acc = T::zero();
        for v in chunk.iter_mut() {
            acc = acc.add(*v);
            *v = acc;
        }
        acc
    };
    if values.len() < MIN_PARALLEL {
        return serial(values).as_usize();
    }
    let threads = rayon::current_num_threads().max(1);
    let block = values.len().div_ceil(threads);

    // Pass 1: inclusive scan within each block, collect block totals.
    let mut block_sums: Vec<usize> = values
        .par_chunks_mut(block)
        .map(|chunk| serial(chunk).as_usize())
        .collect();

    // Pass 2: exclusive scan over the (tiny) block totals.
    let total = prefix_sum_exclusive(&mut block_sums);

    // Pass 3: add each block's offset.
    values
        .par_chunks_mut(block)
        .zip(block_sums.par_iter())
        .for_each(|(chunk, &offset)| {
            if offset != 0 {
                let offset = T::from_usize(offset);
                for v in chunk.iter_mut() {
                    *v = v.add(offset);
                }
            }
        });
    total
}

/// Parallel in-place **inclusive** prefix sum.
///
/// Falls back to the serial scan for small inputs where parallelism cannot
/// pay for itself.
pub fn inclusive_prefix_sum_parallel(values: &mut [usize]) -> usize {
    inclusive_scan_parallel(values)
}

/// Parallel in-place **inclusive** prefix sum over `u32` counters (the
/// uniform grid's box-offset table stores `u32` to halve the memory traffic
/// of its O(#boxes) merge passes). The caller guarantees the total fits in
/// `u32`; it is returned widened for convenience.
pub fn inclusive_prefix_sum_parallel_u32(values: &mut [u32]) -> usize {
    inclusive_scan_parallel(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exclusive_basic() {
        let mut v = vec![3, 1, 4, 1, 5];
        let total = prefix_sum_exclusive(&mut v);
        assert_eq!(v, vec![0, 3, 4, 8, 9]);
        assert_eq!(total, 14);
    }

    #[test]
    fn inclusive_basic() {
        let mut v = vec![3, 1, 4, 1, 5];
        let total = prefix_sum_inclusive(&mut v);
        assert_eq!(v, vec![3, 4, 8, 9, 14]);
        assert_eq!(total, 14);
    }

    #[test]
    fn empty_and_single() {
        let mut e: Vec<usize> = vec![];
        assert_eq!(prefix_sum_exclusive(&mut e), 0);
        assert_eq!(inclusive_prefix_sum_parallel(&mut e), 0);
        let mut s = vec![7];
        assert_eq!(prefix_sum_inclusive(&mut s), 7);
        assert_eq!(s, vec![7]);
    }

    #[test]
    fn parallel_matches_serial_large() {
        let n = 100_000;
        let src: Vec<usize> = (0..n).map(|i| (i * 2654435761) % 17).collect();
        let mut a = src.clone();
        let mut b = src;
        let ta = prefix_sum_inclusive(&mut a);
        let tb = inclusive_prefix_sum_parallel(&mut b);
        assert_eq!(ta, tb);
        assert_eq!(a, b);
    }

    #[test]
    fn u32_parallel_matches_serial() {
        let n = 100_000;
        let src: Vec<u32> = (0..n)
            .map(|i| ((i * 2654435761usize) % 17) as u32)
            .collect();
        let mut a = src.clone();
        let total = inclusive_prefix_sum_parallel_u32(&mut a);
        let mut acc = 0u32;
        for (i, &v) in src.iter().enumerate() {
            acc += v;
            assert_eq!(a[i], acc);
        }
        assert_eq!(total, acc as usize);
    }

    proptest! {
        #[test]
        fn prop_parallel_matches_serial(src in proptest::collection::vec(0usize..100, 0..20_000)) {
            let mut a = src.clone();
            let mut b = src;
            let ta = prefix_sum_inclusive(&mut a);
            let tb = inclusive_prefix_sum_parallel(&mut b);
            prop_assert_eq!(ta, tb);
            prop_assert_eq!(a, b);
        }

        #[test]
        fn prop_exclusive_shifts_inclusive(src in proptest::collection::vec(0usize..100, 1..1000)) {
            let mut ex = src.clone();
            let mut inc = src.clone();
            let t1 = prefix_sum_exclusive(&mut ex);
            let t2 = prefix_sum_inclusive(&mut inc);
            prop_assert_eq!(t1, t2);
            for i in 1..src.len() {
                prop_assert_eq!(ex[i], inc[i - 1]);
            }
            prop_assert_eq!(ex[0], 0);
        }
    }
}
