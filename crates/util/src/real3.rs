//! Three-component double-precision vector used for positions, displacements,
//! and forces throughout the engine.
//!
//! The paper's simulations use double-precision floating point (Section 6.1),
//! so `Real3` wraps `[f64; 3]`. The type is `Copy`, 24 bytes, and all
//! operations are branch-free where possible so they vectorize well.

use std::iter::Sum;
use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

/// A 3-D vector of `f64`, the basic geometric quantity of the engine.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Real3(pub [f64; 3]);

impl Real3 {
    /// The zero vector.
    pub const ZERO: Real3 = Real3([0.0; 3]);

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Real3([x, y, z])
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Real3([v, v, v])
    }

    /// X component.
    #[inline]
    pub const fn x(&self) -> f64 {
        self.0[0]
    }

    /// Y component.
    #[inline]
    pub const fn y(&self) -> f64 {
        self.0[1]
    }

    /// Z component.
    #[inline]
    pub const fn z(&self) -> f64 {
        self.0[2]
    }

    /// Dot product.
    #[inline]
    pub fn dot(&self, o: &Real3) -> f64 {
        self.0[0] * o.0[0] + self.0[1] * o.0[1] + self.0[2] * o.0[2]
    }

    /// Cross product.
    #[inline]
    pub fn cross(&self, o: &Real3) -> Real3 {
        Real3([
            self.0[1] * o.0[2] - self.0[2] * o.0[1],
            self.0[2] * o.0[0] - self.0[0] * o.0[2],
            self.0[0] * o.0[1] - self.0[1] * o.0[0],
        ])
    }

    /// Squared Euclidean norm. Cheaper than [`Real3::norm`]; prefer it for
    /// comparisons against squared radii in neighbor searches.
    #[inline]
    pub fn norm_sq(&self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared distance to another point.
    #[inline]
    pub fn distance_sq(&self, o: &Real3) -> f64 {
        let dx = self.0[0] - o.0[0];
        let dy = self.0[1] - o.0[1];
        let dz = self.0[2] - o.0[2];
        dx * dx + dy * dy + dz * dz
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(&self, o: &Real3) -> f64 {
        self.distance_sq(o).sqrt()
    }

    /// Returns the unit vector pointing in the same direction, or zero if the
    /// norm is too small to normalize safely.
    #[inline]
    pub fn normalized(&self) -> Real3 {
        let n = self.norm();
        if n > 1e-30 {
            *self / n
        } else {
            Real3::ZERO
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(&self, o: &Real3) -> Real3 {
        Real3([
            self.0[0].min(o.0[0]),
            self.0[1].min(o.0[1]),
            self.0[2].min(o.0[2]),
        ])
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(&self, o: &Real3) -> Real3 {
        Real3([
            self.0[0].max(o.0[0]),
            self.0[1].max(o.0[1]),
            self.0[2].max(o.0[2]),
        ])
    }

    /// Clamps every component into `[lo, hi]`.
    #[inline]
    pub fn clamp_scalar(&self, lo: f64, hi: f64) -> Real3 {
        Real3([
            self.0[0].clamp(lo, hi),
            self.0[1].clamp(lo, hi),
            self.0[2].clamp(lo, hi),
        ])
    }

    /// True if all components are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|v| v.is_finite())
    }

    /// The largest component.
    #[inline]
    pub fn max_element(&self) -> f64 {
        self.0[0].max(self.0[1]).max(self.0[2])
    }
}

impl From<[f64; 3]> for Real3 {
    #[inline]
    fn from(a: [f64; 3]) -> Self {
        Real3(a)
    }
}

impl From<Real3> for [f64; 3] {
    #[inline]
    fn from(v: Real3) -> Self {
        v.0
    }
}

impl Index<usize> for Real3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for Real3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

impl Add for Real3 {
    type Output = Real3;
    #[inline]
    fn add(self, o: Real3) -> Real3 {
        Real3([self.0[0] + o.0[0], self.0[1] + o.0[1], self.0[2] + o.0[2]])
    }
}

impl AddAssign for Real3 {
    #[inline]
    fn add_assign(&mut self, o: Real3) {
        self.0[0] += o.0[0];
        self.0[1] += o.0[1];
        self.0[2] += o.0[2];
    }
}

impl Sub for Real3 {
    type Output = Real3;
    #[inline]
    fn sub(self, o: Real3) -> Real3 {
        Real3([self.0[0] - o.0[0], self.0[1] - o.0[1], self.0[2] - o.0[2]])
    }
}

impl SubAssign for Real3 {
    #[inline]
    fn sub_assign(&mut self, o: Real3) {
        self.0[0] -= o.0[0];
        self.0[1] -= o.0[1];
        self.0[2] -= o.0[2];
    }
}

impl Mul<f64> for Real3 {
    type Output = Real3;
    #[inline]
    fn mul(self, s: f64) -> Real3 {
        Real3([self.0[0] * s, self.0[1] * s, self.0[2] * s])
    }
}

impl Mul<Real3> for f64 {
    type Output = Real3;
    #[inline]
    fn mul(self, v: Real3) -> Real3 {
        v * self
    }
}

impl MulAssign<f64> for Real3 {
    #[inline]
    fn mul_assign(&mut self, s: f64) {
        self.0[0] *= s;
        self.0[1] *= s;
        self.0[2] *= s;
    }
}

impl Div<f64> for Real3 {
    type Output = Real3;
    #[inline]
    fn div(self, s: f64) -> Real3 {
        Real3([self.0[0] / s, self.0[1] / s, self.0[2] / s])
    }
}

impl DivAssign<f64> for Real3 {
    #[inline]
    fn div_assign(&mut self, s: f64) {
        self.0[0] /= s;
        self.0[1] /= s;
        self.0[2] /= s;
    }
}

impl Neg for Real3 {
    type Output = Real3;
    #[inline]
    fn neg(self) -> Real3 {
        Real3([-self.0[0], -self.0[1], -self.0[2]])
    }
}

impl Sum for Real3 {
    fn sum<I: Iterator<Item = Real3>>(iter: I) -> Real3 {
        iter.fold(Real3::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let v = Real3::new(1.0, 2.0, 3.0);
        assert_eq!(v.x(), 1.0);
        assert_eq!(v.y(), 2.0);
        assert_eq!(v.z(), 3.0);
        assert_eq!(Real3::splat(4.0), Real3::new(4.0, 4.0, 4.0));
        assert_eq!(Real3::from([1.0, 2.0, 3.0]), v);
        let a: [f64; 3] = v.into();
        assert_eq!(a, [1.0, 2.0, 3.0]);
    }

    #[test]
    fn arithmetic() {
        let a = Real3::new(1.0, 2.0, 3.0);
        let b = Real3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Real3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Real3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Real3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(b / 2.0, Real3::new(2.0, 2.5, 3.0));
        assert_eq!(-a, Real3::new(-1.0, -2.0, -3.0));
        let mut c = a;
        c += b;
        c -= a;
        c *= 3.0;
        c /= 3.0;
        assert_eq!(c, b);
    }

    #[test]
    fn dot_cross_norm() {
        let a = Real3::new(1.0, 0.0, 0.0);
        let b = Real3::new(0.0, 1.0, 0.0);
        assert_eq!(a.dot(&b), 0.0);
        assert_eq!(a.cross(&b), Real3::new(0.0, 0.0, 1.0));
        assert_eq!(b.cross(&a), Real3::new(0.0, 0.0, -1.0));
        let v = Real3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm_sq(), 25.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.normalized().norm(), 1.0);
        assert_eq!(Real3::ZERO.normalized(), Real3::ZERO);
    }

    #[test]
    fn distances() {
        let a = Real3::new(1.0, 1.0, 1.0);
        let b = Real3::new(4.0, 5.0, 1.0);
        assert_eq!(a.distance_sq(&b), 25.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn min_max_clamp() {
        let a = Real3::new(1.0, 5.0, -2.0);
        let b = Real3::new(2.0, 4.0, -3.0);
        assert_eq!(a.min(&b), Real3::new(1.0, 4.0, -3.0));
        assert_eq!(a.max(&b), Real3::new(2.0, 5.0, -2.0));
        assert_eq!(a.clamp_scalar(0.0, 2.0), Real3::new(1.0, 2.0, 0.0));
        assert_eq!(a.max_element(), 5.0);
    }

    #[test]
    fn finiteness_and_sum() {
        assert!(Real3::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Real3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Real3::new(0.0, f64::INFINITY, 0.0).is_finite());
        let s: Real3 = [Real3::splat(1.0), Real3::splat(2.0)].into_iter().sum();
        assert_eq!(s, Real3::splat(3.0));
    }

    #[test]
    fn indexing() {
        let mut v = Real3::new(1.0, 2.0, 3.0);
        assert_eq!(v[1], 2.0);
        v[2] = 9.0;
        assert_eq!(v.z(), 9.0);
    }
}
