//! Deterministic random number generation.
//!
//! Simulations must be exactly reproducible for a fixed seed (the integration
//! tests depend on it), so every source of randomness in the engine goes
//! through [`SimRng`]. Internally this is `rand::rngs::SmallRng`
//! (xoshiro256++), which is fast enough to sit inside per-agent behaviors.
//!
//! Thread-local streams are derived with [`SimRng::stream`] using a SplitMix64
//! hash of `(seed, stream_id)` so that every thread receives a statistically
//! independent generator from one user-facing seed.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// SplitMix64 step: the canonical 64-bit seed scrambler.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic simulation RNG. Cheap to construct, `Send`, not `Sync`
/// (each thread owns its own stream).
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a user-facing seed.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        let mut key = [0u8; 32];
        for chunk in key.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut s).to_le_bytes());
        }
        SimRng {
            inner: SmallRng::from_seed(key),
        }
    }

    /// Derives an independent stream (e.g., one per thread or per agent batch)
    /// from the same user-facing seed.
    pub fn stream(seed: u64, stream_id: u64) -> Self {
        let mut s = seed ^ stream_id.wrapping_mul(0xA076_1D64_78BD_642F);
        SimRng::new(splitmix64(&mut s))
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard-normal sample (Marsaglia polar method).
    pub fn gaussian(&mut self, mean: f64, std_dev: f64) -> f64 {
        loop {
            let u = self.uniform_in(-1.0, 1.0);
            let v = self.uniform_in(-1.0, 1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return mean + std_dev * u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Uniform point inside an axis-aligned box `[lo, hi)^3`.
    pub fn point_in_cube(&mut self, lo: f64, hi: f64) -> crate::Real3 {
        crate::Real3::new(
            self.uniform_in(lo, hi),
            self.uniform_in(lo, hi),
            self.uniform_in(lo, hi),
        )
    }

    /// Uniform unit vector (direction), via normalized Gaussian components.
    pub fn unit_vector(&mut self) -> crate::Real3 {
        loop {
            let v = crate::Real3::new(
                self.gaussian(0.0, 1.0),
                self.gaussian(0.0, 1.0),
                self.gaussian(0.0, 1.0),
            );
            let n = v.norm();
            if n > 1e-12 {
                return v / n;
            }
        }
    }

    /// Raw 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn streams_are_independent_and_deterministic() {
        let mut s0 = SimRng::stream(7, 0);
        let mut s0b = SimRng::stream(7, 0);
        let mut s1 = SimRng::stream(7, 1);
        assert_eq!(s0.next_u64(), s0b.next_u64());
        let same = (0..32).filter(|_| s0.next_u64() == s1.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn uniform_bounds() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let v = r.uniform();
            assert!((0.0..1.0).contains(&v));
            let w = r.uniform_in(-5.0, 5.0);
            assert!((-5.0..5.0).contains(&w));
        }
    }

    #[test]
    fn below_bounds() {
        let mut r = SimRng::new(4);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            seen[r.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should be hit");
    }

    #[test]
    fn gaussian_moments() {
        let mut r = SimRng::new(5);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gaussian(2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn unit_vector_is_unit() {
        let mut r = SimRng::new(6);
        for _ in 0..1000 {
            let v = r.unit_vector();
            assert!((v.norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(8);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0 + 1e-12)));
    }
}
