//! `Send`/`Sync` raw-pointer wrapper for provably disjoint parallel writes.
//!
//! The engine frequently fills freshly reserved vector tails from multiple
//! threads where every index is written by exactly one task. [`SendMut`]
//! carries the base pointer across threads; all access goes through methods
//! (not field access) so that edition-2021 closures capture the wrapper —
//! which carries the `Sync` promise — rather than the bare pointer.

/// Shared mutable base pointer; the caller guarantees disjoint index access.
#[derive(Debug)]
pub struct SendMut<T>(*mut T);

impl<T> Clone for SendMut<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendMut<T> {}

// SAFETY: the caller promises disjoint-index access (each index touched by
// at most one thread at a time); the wrapper itself holds no data.
unsafe impl<T> Send for SendMut<T> {}
unsafe impl<T> Sync for SendMut<T> {}

impl<T> SendMut<T> {
    /// Wraps a base pointer.
    pub fn new(ptr: *mut T) -> SendMut<T> {
        SendMut(ptr)
    }

    /// Writes `v` into slot `i`.
    ///
    /// # Safety
    /// `i` must be in bounds of the allocation and written by exactly one
    /// task; the slot must be treated as uninitialized (no drop of the old
    /// value).
    #[inline]
    pub unsafe fn write(&self, i: usize, v: T) {
        self.0.add(i).write(v);
    }

    /// Raw pointer to slot `i`.
    ///
    /// # Safety
    /// `i` must be in bounds; aliasing discipline is the caller's contract.
    #[inline]
    pub unsafe fn ptr_at(&self, i: usize) -> *mut T {
        self.0.add(i)
    }

    /// Exclusive reference to slot `i`.
    ///
    /// # Safety
    /// `i` must be in bounds, initialized, and accessed by exactly one task
    /// for the lifetime of the returned reference.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        &mut *self.0.add(i)
    }

    /// Swaps slots… of two *different* `SendMut` views or indices.
    ///
    /// # Safety
    /// Both indices must be in bounds, initialized, distinct, and not
    /// accessed concurrently by any other task.
    #[inline]
    pub unsafe fn swap(&self, a: usize, b: usize) {
        std::ptr::swap(self.0.add(a), self.0.add(b));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_parallel_writes() {
        let n = 10_000;
        let mut v = vec![0u64; n];
        let p = SendMut::new(v.as_mut_ptr());
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    for i in (t..n).step_by(4) {
                        unsafe { p.write(i, i as u64) };
                    }
                });
            }
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64));
    }

    #[test]
    fn swap_and_get_mut() {
        let mut v = vec![1, 2, 3];
        let p = SendMut::new(v.as_mut_ptr());
        unsafe {
            p.swap(0, 2);
            *p.get_mut(1) = 9;
            assert_eq!(*p.ptr_at(0), 3);
        }
        assert_eq!(v, vec![3, 9, 1]);
    }
}
