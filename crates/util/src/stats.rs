//! Descriptive statistics used by the benchmark harness.
//!
//! The paper reports medians, geometric means ("median speedup of 159×"),
//! minima/maxima, and per-iteration averages; [`Summary`] computes all of them
//! in one pass over a sample vector.

/// Summary statistics of a set of `f64` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (average of the two middle elements for even `n`).
    pub median: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl Summary {
    /// Computes summary statistics. Returns `None` for an empty sample set.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        };
        Some(Summary {
            n,
            mean,
            median,
            min: sorted[0],
            max: sorted[n - 1],
            std_dev: var.sqrt(),
        })
    }
}

/// Geometric mean; all samples must be positive. Returns `None` if the sample
/// set is empty or contains non-positive values.
pub fn geometric_mean(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() || samples.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let log_sum: f64 = samples.iter().map(|x| x.ln()).sum();
    Some((log_sum / samples.len() as f64).exp())
}

/// Median of a sample set (convenience wrapper around [`Summary::of`]).
pub fn median(samples: &[f64]) -> Option<f64> {
    Summary::of(samples).map(|s| s.median)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert!(Summary::of(&[]).is_none());
        assert!(geometric_mean(&[]).is_none());
        assert!(median(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[3.0]).unwrap();
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 3.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn odd_median() {
        assert_eq!(median(&[5.0, 1.0, 3.0]).unwrap(), 3.0);
    }

    #[test]
    fn even_median() {
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]).unwrap(), 2.5);
    }

    #[test]
    fn summary_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 2.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn geomean() {
        let g = geometric_mean(&[1.0, 4.0, 16.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
        assert!(geometric_mean(&[1.0, 0.0]).is_none());
        assert!(geometric_mean(&[1.0, -2.0]).is_none());
    }
}
