//! Plain-text table and CSV emitters for the benchmark harness.
//!
//! Every `fig*`/`table*` binary prints an aligned text table mirroring the
//! paper's rows/series and can additionally write CSV for plotting.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. The row is padded/truncated to the header width.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as an aligned string.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                width[i] = width[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let pad = width[i] - cell.chars().count();
                let _ = write!(out, "{}{}", cell, " ".repeat(pad));
                if i + 1 != ncols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        let rule: usize = width.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Renders the table as CSV (RFC-4180-style quoting for commas/quotes).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let quote = |c: &str| {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let emit = |out: &mut String, cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| quote(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        emit(&mut out, &self.header);
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Writes a table as CSV to `path`, creating parent directories as needed.
pub fn write_csv(table: &Table, path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, table.to_csv())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["short", "1"]);
        t.row(["a-much-longer-name", "23456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        // All data lines align the second column at the same byte offset.
        let col = lines[2].find("1").unwrap();
        assert_eq!(&lines[3][col..col + 1], "2");
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let csv = t.to_csv();
        assert_eq!(csv.lines().nth(1).unwrap(), "1,,");
    }

    #[test]
    fn csv_quoting() {
        let mut t = Table::new(["x"]);
        t.row(["has,comma"]);
        t.row(["has\"quote"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    fn writes_file() {
        let dir = std::env::temp_dir().join("bdm_util_table_test");
        let path = dir.join("sub").join("t.csv");
        let mut t = Table::new(["h"]);
        t.row(["v"]);
        write_csv(&t, &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "h\nv\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
