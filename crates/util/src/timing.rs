//! Wall-clock timing helpers.
//!
//! The scheduler attributes runtime to operations (paper Figure 5 "operation
//! runtime breakdown") via [`Timer`]s accumulated into named buckets.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// A simple restartable stopwatch.
#[derive(Debug, Clone)]
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Starts a new stopwatch.
    pub fn start() -> Timer {
        Timer {
            start: Instant::now(),
        }
    }

    /// Elapsed time since construction or the last [`Timer::restart`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed seconds as `f64`.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Resets the stopwatch and returns the previous elapsed time.
    pub fn restart(&mut self) -> Duration {
        let e = self.elapsed();
        self.start = Instant::now();
        e
    }
}

impl Default for Timer {
    fn default() -> Self {
        Timer::start()
    }
}

/// Accumulates wall-clock time into named buckets; used by the scheduler to
/// produce the operation-runtime breakdown of Figure 5.
#[derive(Debug, Default, Clone)]
pub struct TimeBuckets {
    buckets: BTreeMap<String, Duration>,
}

impl TimeBuckets {
    /// Creates an empty set of buckets.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `d` to bucket `name`.
    pub fn add(&mut self, name: &str, d: Duration) {
        *self.buckets.entry(name.to_string()).or_default() += d;
    }

    /// Times the closure and adds the elapsed duration to bucket `name`.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let t = Timer::start();
        let r = f();
        self.add(name, t.elapsed());
        r
    }

    /// Total accumulated time across all buckets.
    pub fn total(&self) -> Duration {
        self.buckets.values().sum()
    }

    /// Iterates `(name, duration)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Duration)> {
        self.buckets.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Returns the accumulated time for `name`, if any.
    pub fn get(&self, name: &str) -> Option<Duration> {
        self.buckets.get(name).copied()
    }

    /// Fraction of total time spent in `name` (0 if bucket or total is empty).
    pub fn fraction(&self, name: &str) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            return 0.0;
        }
        self.get(name).map_or(0.0, |d| d.as_secs_f64() / total)
    }

    /// Removes all buckets.
    pub fn clear(&mut self) {
        self.buckets.clear();
    }

    /// Merges another set of buckets into this one.
    pub fn merge(&mut self, other: &TimeBuckets) {
        for (name, d) in other.iter() {
            self.add(name, d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn timer_progresses() {
        let mut t = Timer::start();
        std::thread::sleep(Duration::from_millis(5));
        assert!(t.elapsed_secs() >= 0.004);
        let prev = t.restart();
        assert!(prev >= Duration::from_millis(4));
        assert!(t.elapsed() < prev);
    }

    #[test]
    fn buckets_accumulate() {
        let mut b = TimeBuckets::new();
        b.add("a", Duration::from_millis(10));
        b.add("a", Duration::from_millis(5));
        b.add("b", Duration::from_millis(15));
        assert_eq!(b.get("a"), Some(Duration::from_millis(15)));
        assert_eq!(b.total(), Duration::from_millis(30));
        assert!((b.fraction("a") - 0.5).abs() < 1e-9);
        assert_eq!(b.get("missing"), None);
        assert_eq!(b.fraction("missing"), 0.0);
    }

    #[test]
    fn buckets_time_closure() {
        let mut b = TimeBuckets::new();
        let v = b.time("work", || {
            std::thread::sleep(Duration::from_millis(3));
            42
        });
        assert_eq!(v, 42);
        assert!(b.get("work").unwrap() >= Duration::from_millis(2));
    }

    #[test]
    fn buckets_merge_and_clear() {
        let mut a = TimeBuckets::new();
        a.add("x", Duration::from_millis(1));
        let mut b = TimeBuckets::new();
        b.add("x", Duration::from_millis(2));
        b.add("y", Duration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.get("x"), Some(Duration::from_millis(3)));
        assert_eq!(a.get("y"), Some(Duration::from_millis(3)));
        a.clear();
        assert_eq!(a.total(), Duration::ZERO);
    }

    #[test]
    fn empty_fraction_is_zero() {
        let b = TimeBuckets::new();
        assert_eq!(b.fraction("anything"), 0.0);
    }
}
