//! The Biocellion cell-sorting model (paper Section 6.5, Figure 7a): two
//! adhesive cell types sort from a random mixture into same-type clusters.
//! Optionally dumps the final state as CSV for visualization.
//!
//! Run with: `cargo run --release --example cell_sorting -- [cells] [iterations] [out.csv]`

use biodynamo::models::cell_sorting::dump_positions_csv;
use biodynamo::models::{same_type_neighbor_fraction, BenchmarkModel, CellSorting};
use biodynamo::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let cells: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2000);
    let iterations: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);
    let out = args.next();

    let model = CellSorting::new(cells);
    let mut sim = model.build(Param::default());

    let initial = same_type_neighbor_fraction(&sim, model.adhesion_radius, 300);
    println!("initial same-type neighbor fraction: {initial:.3} (random mixture ≈ 0.5)");

    for _ in 0..iterations / 20 {
        sim.simulate(20);
        let f = same_type_neighbor_fraction(&sim, model.adhesion_radius, 300);
        println!("iter {:4}: same-type fraction {:.3}", sim.iteration(), f);
    }

    if let Some(path) = out {
        std::fs::write(&path, dump_positions_csv(&sim)).expect("write CSV");
        println!("final state written to {path} (x,y,z,type)");
    }
}
