//! The Biocellion cell-sorting model (paper Section 6.5, Figure 7a): two
//! adhesive cell types sort from a random mixture into same-type clusters.
//! Optionally dumps the final state as CSV for visualization.
//!
//! The progress metric is sampled by a custom [`Operation`] registered on
//! the engine scheduler (every 20th iteration) instead of an external
//! measure-and-step loop — the simulation runs in one `simulate` call.
//!
//! Run with: `cargo run --release --example cell_sorting -- [cells] [iterations] [out.csv]`

use biodynamo::models::cell_sorting::dump_positions_csv;
use biodynamo::models::{same_type_neighbor_fraction, BenchmarkModel, CellSorting};
use biodynamo::prelude::*;

/// Prints the same-type neighbor fraction on a fixed schedule.
struct SortingProgress {
    radius: f64,
}

impl Operation for SortingProgress {
    fn name(&self) -> &str {
        "sorting_progress"
    }
    fn kind(&self) -> OpKind {
        OpKind::Post
    }
    fn frequency(&self) -> u64 {
        20
    }
    fn run(&mut self, ctx: &mut SimulationCtx<'_>) {
        let f = same_type_neighbor_fraction(ctx.sim, self.radius, 300);
        println!("iter {:4}: same-type fraction {:.3}", ctx.iteration(), f);
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let cells: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2000);
    let iterations: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);
    let out = args.next();

    let model = CellSorting::new(cells);
    let mut sim = model.build(Param::default());
    sim.scheduler_mut().add_op(SortingProgress {
        radius: model.adhesion_radius,
    });

    let initial = same_type_neighbor_fraction(&sim, model.adhesion_radius, 300);
    println!("initial same-type neighbor fraction: {initial:.3} (random mixture ≈ 0.5)");
    sim.simulate(iterations);

    if let Some(path) = out {
        std::fs::write(&path, dump_positions_csv(&sim)).expect("write CSV");
        println!("final state written to {path} (x,y,z,type)");
    }
}
