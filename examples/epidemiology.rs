//! SIR epidemic in a randomly moving population (the epidemiology
//! benchmark). Prints the S/I/R time series — the classic epidemic wave.
//!
//! Run with: `cargo run --release --example epidemiology -- [persons] [iterations]`

use biodynamo::models::{BenchmarkModel, Epidemiology};
use biodynamo::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let persons: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2000);
    let iterations: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(120);

    let model = Epidemiology::new(persons);
    let mut sim = model.build(Param::default());

    println!("iteration,susceptible,infected,recovered");
    for _ in 0..iterations / 5 {
        sim.simulate(5);
        let s = sim.count_agents(|a| a.payload() == 0);
        let i = sim.count_agents(|a| a.payload() == 1);
        let r = sim.count_agents(|a| a.payload() == 2);
        println!("{},{},{},{}", sim.iteration(), s, i, r);
    }

    let attack_rate = sim.count_agents(|a| a.payload() != 0) as f64 / sim.num_agents() as f64;
    eprintln!("\nfinal attack rate: {:.1}%", attack_rate * 100.0);
}
