//! SIR epidemic in a randomly moving population (the epidemiology
//! benchmark). Prints the S/I/R time series — the classic epidemic wave.
//!
//! The census is a custom [`Operation`] scheduled every 5th iteration, so
//! the whole run is a single `simulate` call with the reporting inside the
//! engine pipeline.
//!
//! Run with: `cargo run --release --example epidemiology -- [persons] [iterations]`

use biodynamo::models::{BenchmarkModel, Epidemiology};
use biodynamo::prelude::*;

/// Counts S/I/R compartments and prints one CSV row per sample.
struct SirCensus;

impl Operation for SirCensus {
    fn name(&self) -> &str {
        "sir_census"
    }
    fn kind(&self) -> OpKind {
        OpKind::Post
    }
    fn frequency(&self) -> u64 {
        5
    }
    fn run(&mut self, ctx: &mut SimulationCtx<'_>) {
        let s = ctx.count_agents(|a| a.payload() == 0);
        let i = ctx.count_agents(|a| a.payload() == 1);
        let r = ctx.count_agents(|a| a.payload() == 2);
        println!("{},{},{},{}", ctx.iteration(), s, i, r);
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let persons: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2000);
    let iterations: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(120);

    let model = Epidemiology::new(persons);
    let mut sim = model.build(Param::default());
    sim.scheduler_mut().add_op(SirCensus);

    println!("iteration,susceptible,infected,recovered");
    sim.simulate(iterations);

    let attack_rate = sim.count_agents(|a| a.payload() != 0) as f64 / sim.num_agents() as f64;
    eprintln!("\nfinal attack rate: {:.1}%", attack_rate * 100.0);
}
