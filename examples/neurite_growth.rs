//! Neural development: somas extend branching neurites toward a guidance
//! cue. Demonstrates the neuroscience specialization and the static-region
//! detection of paper Section 5 (only the growth front computes forces).
//!
//! Run with: `cargo run --release --example neurite_growth -- [neurons] [iterations]`

use biodynamo::models::{BenchmarkModel, Neuroscience};
use biodynamo::neuro::{NeuriteElement, PAYLOAD_NEURITE, PAYLOAD_SOMA};
use biodynamo::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let neurons: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let iterations: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(80);

    let mut model = Neuroscience::new(neurons * 3);
    model.cone.branch_probability = 0.05;
    // Models consume a plain `Param` — the struct-literal form stays fully
    // supported alongside `Simulation::builder()`.
    let mut sim = model.build(Param {
        detect_static_agents: true, // the paper's Section 5 mechanism
        ..Param::default()
    });

    for _ in 0..iterations / 10 {
        sim.simulate(10);
        let stats = sim.stats();
        let neurites = sim.count_agents(|a| a.payload() == PAYLOAD_NEURITE);
        println!(
            "iter {:4}: {:5} neurite elements | force calcs {:8} | static skips {:8}",
            sim.iteration(),
            neurites,
            stats.force_calculations,
            stats.static_skipped
        );
    }

    // Arbor statistics.
    let mut terminals = 0usize;
    let mut total_length = 0.0;
    let mut max_order = 0u32;
    sim.for_each_agent(|_, a| {
        if let Some(e) = a.as_any().downcast_ref::<NeuriteElement>() {
            if e.is_terminal() {
                terminals += 1;
            }
            total_length += e.length();
            max_order = max_order.max(e.branch_order());
        }
    });
    let somas = sim.count_agents(|a| a.payload() == PAYLOAD_SOMA);
    println!(
        "\n{} neurons grew {:.0} µm of neurite ({} growth cones, max branch order {})",
        somas, total_length, terminals, max_order
    );
    let stats = sim.stats();
    let saved = stats.static_skipped as f64
        / (stats.static_skipped + stats.force_calculations).max(1) as f64;
    println!(
        "static-region detection skipped {:.1}% of force calculations",
        saved * 100.0
    );
}
