//! Quickstart: a small population of growing, dividing cells.
//!
//! Run with: `cargo run --release --example quickstart`

use biodynamo::models::GrowthDivision;
use biodynamo::prelude::*;

fn main() {
    // Full optimizations are the default; the standard (unoptimized)
    // configuration of the paper's evaluation is `Param::standard()`.
    let mut sim = Simulation::new(Param {
        simulation_time_step: 1.0,
        ..Param::default()
    });

    // A 4×4×4 grid of cells with the growth+division behavior.
    let mut rng = SimRng::new(42);
    for x in 0..4 {
        for y in 0..4 {
            for z in 0..4 {
                let uid = sim.new_uid();
                let mut cell = Cell::new(uid)
                    .with_position(Real3::new(
                        x as f64 * 20.0,
                        y as f64 * 20.0,
                        z as f64 * 20.0,
                    ))
                    .with_diameter(9.0 + rng.uniform_in(0.0, 2.0))
                    .with_growth_rate(50.0)
                    .with_division_threshold(14.0);
                cell.base_mut().add_behavior(new_behavior_box(
                    GrowthDivision,
                    sim.memory_manager(),
                    0,
                ));
                sim.add_agent(cell);
            }
        }
    }

    println!("initial agents: {}", sim.num_agents());
    for round in 1..=5 {
        sim.simulate(10);
        println!(
            "after {:3} iterations: {:6} agents (added {} / removed {})",
            round * 10,
            sim.num_agents(),
            sim.stats().agents_added,
            sim.stats().agents_removed,
        );
    }

    // The engine's per-phase runtime breakdown (paper Figure 5).
    println!("\noperation runtime breakdown:");
    let buckets = sim.time_buckets();
    for (name, d) in buckets.iter() {
        println!(
            "  {:20} {:8.2} ms ({:4.1}%)",
            name,
            d.as_secs_f64() * 1e3,
            100.0 * buckets.fraction(name)
        );
    }
}
