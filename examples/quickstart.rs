//! Quickstart: a small population of growing, dividing cells, built with
//! the fluent `Simulation::builder()` API.
//!
//! Run with: `cargo run --release --example quickstart`

use biodynamo::models::GrowthDivision;
use biodynamo::prelude::*;

fn main() {
    // Full optimizations are the default; the standard (unoptimized)
    // configuration of the paper's evaluation is
    // `Simulation::builder().opt_level(OptLevel::Standard)`.
    let mut sim = Simulation::builder().time_step(1.0).build();

    // A 4×4×4 grid of cells with the growth+division behavior.
    let mut rng = SimRng::new(42);
    for x in 0..4 {
        for y in 0..4 {
            for z in 0..4 {
                let uid = sim.new_uid();
                let mut cell = Cell::new(uid)
                    .with_position(Real3::new(
                        x as f64 * 20.0,
                        y as f64 * 20.0,
                        z as f64 * 20.0,
                    ))
                    .with_diameter(9.0 + rng.uniform_in(0.0, 2.0))
                    .with_growth_rate(50.0)
                    .with_division_threshold(14.0);
                cell.base_mut().add_behavior(new_behavior_box(
                    GrowthDivision,
                    sim.memory_manager(),
                    0,
                ));
                sim.add_agent(cell);
            }
        }
    }

    println!("initial agents: {}", sim.num_agents());
    for round in 1..=5 {
        sim.simulate(10);
        println!(
            "after {:3} iterations: {:6} agents (added {} / removed {})",
            round * 10,
            sim.num_agents(),
            sim.stats().agents_added,
            sim.stats().agents_removed,
        );
    }

    // The engine pipeline is a first-class op list: per-operation wall-clock
    // timings come straight from the scheduler (paper Figure 5).
    println!("\nscheduler pipeline (execution order):");
    let total = sim.time_buckets().total().as_secs_f64();
    for op in sim.scheduler().ops() {
        println!(
            "  {:20} kind={:10} freq={:3} runs={:3}  {:8.2} ms ({:4.1}%)",
            op.name,
            op.kind.label(),
            op.frequency,
            op.runs,
            op.total.as_secs_f64() * 1e3,
            if total > 0.0 {
                100.0 * op.total.as_secs_f64() / total
            } else {
                0.0
            },
        );
    }
}
