//! Soma clustering: two intermixed cell populations secrete distinct
//! substances and climb their own substance's gradient until same-type
//! clusters emerge — the diffusion-heavy use case of the paper's
//! evaluation (cell clustering, Table 1 column 2).
//!
//! Demonstrates building a simulation directly against the public API with
//! the fluent builder: diffusion grids, secretion, chemotaxis, and the
//! clustering quality metric.
//! Run with: `cargo run --release --example soma_clustering`

use biodynamo::models::{same_type_neighbor_fraction, Chemotaxis, Secretion};
use biodynamo::prelude::*;

fn main() {
    let n = 3_000;
    let extent = (n as f64).cbrt() * 15.0;
    // One substance per population; both diffuse and slowly decay.
    let resolution = 32;
    let grid = |name| DiffusionGrid::new(name, 0.4, 0.002, resolution, Real3::ZERO, extent);
    let mut sim = Simulation::builder()
        .time_step(1.0)
        .interaction_radius(15.0)
        .diffusion_grid(grid("substance_0"))
        .diffusion_grid(grid("substance_1"))
        .build();

    // Two intermixed populations, each secreting its own substance and
    // climbing its own gradient.
    let mut rng = SimRng::new(7);
    for i in 0..n {
        let ty = (i % 2) as u64;
        let uid = sim.new_uid();
        let mut cell = Cell::new(uid)
            .with_position(rng.point_in_cube(0.0, extent))
            .with_diameter(10.0)
            .with_cell_type(ty);
        let mm = sim.memory_manager();
        cell.base_mut().add_behavior(new_behavior_box(
            Secretion {
                grid: ty as usize,
                amount: 1.0,
            },
            mm,
            0,
        ));
        cell.base_mut().add_behavior(new_behavior_box(
            Chemotaxis {
                grid: ty as usize,
                speed: 4.0,
            },
            mm,
            0,
        ));
        sim.add_agent(cell);
    }

    println!(
        "{} cells of two types, {}³ diffusion volumes each substance",
        n, resolution
    );
    println!("same-type neighbor fraction (0.5 = random mix, 1.0 = fully sorted):\n");
    let quality = |sim: &Simulation| same_type_neighbor_fraction(sim, 15.0, 300);
    println!("  iteration   0: {:.3}", quality(&sim));
    for round in 1..=4 {
        sim.simulate(25);
        println!("  iteration {:3}: {:.3}", round * 25, quality(&sim));
    }

    let total0 = sim.diffusion_grid(0).total();
    let total1 = sim.diffusion_grid(1).total();
    println!("\nsecreted substance totals: {total0:.0} / {total1:.0}");
    assert!(
        quality(&sim) > 0.55,
        "clusters should have formed (got {:.3})",
        quality(&sim)
    );
    println!("clusters formed ✓");
}
