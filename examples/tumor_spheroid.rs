//! Tumor spheroid growth (the oncology benchmark): density-gated
//! proliferation with stochastic apoptosis — the only workload that removes
//! agents, exercising the parallel removal algorithm of paper Figure 1.
//!
//! Population progress is reported by a custom [`Operation`] scheduled
//! every 10th iteration on the engine pipeline.
//!
//! Run with: `cargo run --release --example tumor_spheroid -- [cells] [iterations]`

use biodynamo::models::{BenchmarkModel, Oncology};
use biodynamo::prelude::*;

/// Prints cell counts and cumulative add/remove statistics.
struct GrowthReport;

impl Operation for GrowthReport {
    fn name(&self) -> &str {
        "growth_report"
    }
    fn kind(&self) -> OpKind {
        OpKind::Post
    }
    fn frequency(&self) -> u64 {
        10
    }
    fn run(&mut self, ctx: &mut SimulationCtx<'_>) {
        let stats = ctx.stats();
        println!(
            "iter {:4}: {:7} cells (+{} / -{})",
            ctx.iteration(),
            ctx.num_agents(),
            stats.agents_added,
            stats.agents_removed
        );
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let cells: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1000);
    let iterations: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(60);

    let model = Oncology::new(cells);
    let mut sim = model.build(Param::default());
    sim.scheduler_mut().add_op(GrowthReport);
    println!(
        "tumor spheroid: {} cells, {} iterations, engine={} threads / {} NUMA domains",
        sim.num_agents(),
        iterations,
        sim.topology().num_threads(),
        sim.topology().num_domains(),
    );

    sim.simulate(iterations);

    // Radial profile of the final spheroid.
    let mut center = Real3::ZERO;
    sim.for_each_agent(|_, a| center += a.position());
    center /= sim.num_agents() as f64;
    let mut radii: Vec<f64> = Vec::new();
    sim.for_each_agent(|_, a| radii.push(a.position().distance(&center)));
    radii.sort_by(|a, b| a.total_cmp(b));
    println!(
        "\nspheroid radius: median {:.1} µm, r90 {:.1} µm, max {:.1} µm",
        radii[radii.len() / 2],
        radii[radii.len() * 9 / 10],
        radii.last().unwrap()
    );
    for (k, v) in model.validate(&sim) {
        println!("  {k} = {v}");
    }
}
