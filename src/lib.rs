//! # biodynamo
//!
//! A high-performance, scalable agent-based simulation engine — a
//! from-scratch Rust reproduction of
//!
//! > *High-Performance and Scalable Agent-Based Simulation with BioDynaMo*,
//! > Breitwieser et al., PPoPP 2023 (arXiv:2301.06984).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`core`](mod@core) | engine: agents, behaviors, scheduler, resource manager, forces, sorting, static detection |
//! | [`env`](mod@env) | neighbor-search environments: uniform grid, kd-tree, octree |
//! | [`alloc`](mod@alloc) | the NUMA-aware pool memory allocator |
//! | [`numa`](mod@numa) | virtual NUMA topology + work-stealing thread pool |
//! | [`sfc`](mod@sfc) | Morton/Hilbert curves and the gap-offset enumeration |
//! | [`diffusion`](mod@diffusion) | extracellular substance diffusion |
//! | [`neuro`](mod@neuro) | neuron somas, neurite elements, growth cones |
//! | [`models`](mod@models) | the five benchmark simulations + cell sorting |
//! | [`baseline`](mod@baseline) | the serial comparator engine |
//! | [`checkpoint`](mod@checkpoint) | versioned binary checkpoint/restore with delta mode, the in-memory restore-point ring, and the supervised (auto-recovering) runner |
//!
//! ## Quickstart
//!
//! ```
//! use biodynamo::prelude::*;
//!
//! // 8 static cells stepped through the full engine, 2 threads.
//! // (See examples/quickstart.rs for a growing/dividing population.)
//! let mut sim = Simulation::builder()
//!     .threads(2)
//!     .time_step(1.0)
//!     .build();
//! for i in 0..8 {
//!     let uid = sim.new_uid();
//!     sim.add_agent(
//!         Cell::new(uid)
//!             .with_position(Real3::splat(i as f64 * 20.0))
//!             .with_diameter(10.0),
//!     );
//! }
//! sim.simulate(10);
//! assert_eq!(sim.num_agents(), 8);
//! ```
//!
//! The engine pipeline is a first-class, per-operation-timed list owned by
//! the [`core::scheduler::Scheduler`]; custom pipeline stages implement
//! [`core::scheduler::Operation`] and are registered through the builder:
//!
//! ```
//! use biodynamo::prelude::*;
//!
//! struct Census;
//! impl Operation for Census {
//!     fn name(&self) -> &str { "census" }
//!     fn kind(&self) -> OpKind { OpKind::Standalone }
//!     fn frequency(&self) -> u64 { 5 } // every 5th iteration
//!     fn run(&mut self, ctx: &mut SimulationCtx<'_>) {
//!         let _agents_alive = ctx.num_agents();
//!     }
//! }
//!
//! let mut sim = Simulation::builder().threads(1).operation(Census).build();
//! sim.simulate(10);
//! assert_eq!(sim.scheduler().ops().iter().find(|o| o.name == "census").unwrap().runs, 2);
//! ```
//!
//! **Migration note:** `Simulation::new(Param { .. })` stays fully
//! supported — [`core::param::Param`] remains the configuration carrier
//! underneath the builder.

pub use bdm_alloc as alloc;
pub use bdm_baseline as baseline;
pub use bdm_checkpoint as checkpoint;
pub use bdm_core as core;
pub use bdm_diffusion as diffusion;
pub use bdm_env as env;
pub use bdm_models as models;
pub use bdm_neuro as neuro;
pub use bdm_numa as numa;
pub use bdm_sfc as sfc;
pub use bdm_util as util;

/// The most common imports for building simulations.
pub mod prelude {
    pub use bdm_checkpoint::{
        CheckpointRing, RecoveryPolicy, RecoveryReport, RingPolicy, SupervisedRunner,
    };
    pub use bdm_core::{
        clone_agent_box, clone_behavior_box, new_agent_box, new_behavior_box, Agent, AgentBase,
        AgentBox, AgentContext, AgentHandle, AgentUid, Behavior, BehaviorBox, BehaviorControl,
        BoundaryCondition, Cell, CloneIn, CurveKind, DiffusionGrid, EnvironmentKind, FaultKind,
        FaultPlan, FaultSite, HealthPolicy, HealthViolation, HealthViolationKind, InteractionForce,
        MemoryManager, Neighbor, NeighborAccess, OpInfo, OpKind, Operation, OptLevel, Param, Real3,
        Scheduler, SimRng, SimStats, Simulation, SimulationBuilder, SimulationCtx, Snapshot,
    };
    pub use bdm_models::BenchmarkModel;
}
