//! # biodynamo
//!
//! A high-performance, scalable agent-based simulation engine — a
//! from-scratch Rust reproduction of
//!
//! > *High-Performance and Scalable Agent-Based Simulation with BioDynaMo*,
//! > Breitwieser et al., PPoPP 2023 (arXiv:2301.06984).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`core`] | engine: agents, behaviors, scheduler, resource manager, forces, sorting, static detection |
//! | [`env`] | neighbor-search environments: uniform grid, kd-tree, octree |
//! | [`alloc`] | the NUMA-aware pool memory allocator |
//! | [`numa`] | virtual NUMA topology + work-stealing thread pool |
//! | [`sfc`] | Morton/Hilbert curves and the gap-offset enumeration |
//! | [`diffusion`] | extracellular substance diffusion |
//! | [`neuro`] | neuron somas, neurite elements, growth cones |
//! | [`models`] | the five benchmark simulations + cell sorting |
//! | [`baseline`] | the serial comparator engine |
//!
//! ## Quickstart
//!
//! ```
//! use biodynamo::prelude::*;
//!
//! // 8 static cells stepped through the full engine, 2 threads.
//! // (See examples/quickstart.rs for a growing/dividing population.)
//! let mut sim = Simulation::new(Param {
//!     threads: Some(2),
//!     simulation_time_step: 1.0,
//!     ..Param::default()
//! });
//! for i in 0..8 {
//!     let uid = sim.new_uid();
//!     sim.add_agent(
//!         Cell::new(uid)
//!             .with_position(Real3::splat(i as f64 * 20.0))
//!             .with_diameter(10.0),
//!     );
//! }
//! sim.simulate(10);
//! assert_eq!(sim.num_agents(), 8);
//! ```

pub use bdm_alloc as alloc;
pub use bdm_baseline as baseline;
pub use bdm_core as core;
pub use bdm_diffusion as diffusion;
pub use bdm_env as env;
pub use bdm_models as models;
pub use bdm_neuro as neuro;
pub use bdm_numa as numa;
pub use bdm_sfc as sfc;
pub use bdm_util as util;

/// The most common imports for building simulations.
pub mod prelude {
    pub use bdm_core::{
        clone_agent_box, clone_behavior_box, new_agent_box, new_behavior_box, Agent, AgentBase,
        AgentBox, AgentContext, AgentHandle, AgentUid, Behavior, BehaviorBox, BehaviorControl,
        BoundaryCondition, Cell, CloneIn, CurveKind, DiffusionGrid, EnvironmentKind,
        InteractionForce, MemoryManager, OptLevel, Param, Real3, SimRng, SimStats, Simulation,
    };
    pub use bdm_models::BenchmarkModel;
}
