//! Integration: box-batched mechanics (ISSUE 6 tentpole).
//!
//! The mechanics force accumulation may stream neighbor positions and
//! diameters from the grid's box-sorted arrays (stencil resolved once per
//! box, one streamed pass per stencil run) — but only as a *routing*
//! change: results must be bitwise identical to the per-agent scalar path
//! on every model. These tests also pin when the grid's conditional
//! diameter scatter materializes: exactly when `NeighborAccess::DIAMETERS`
//! is in the scheduler's due-window union.

use std::collections::BTreeMap;

use biodynamo::models::{all_models, BenchmarkModel};
use biodynamo::prelude::*;

fn param() -> Param {
    Param {
        threads: Some(2),
        numa_domains: Some(2),
        seed: 4357,
        ..Param::default()
    }
}

/// Full agent state keyed by stable uid (as in tests/determinism.rs).
fn state(sim: &Simulation) -> BTreeMap<u64, (Real3, f64, u64)> {
    let mut map = BTreeMap::new();
    sim.for_each_agent(|_, a| {
        map.insert(a.uid().0, (a.position(), a.diameter(), a.payload()));
    });
    map
}

fn assert_bitwise_eq(
    a: &BTreeMap<u64, (Real3, f64, u64)>,
    b: &BTreeMap<u64, (Real3, f64, u64)>,
    what: &str,
) {
    assert_eq!(a.len(), b.len(), "{what}: population diverged");
    for (uid, (pa, da, ya)) in a {
        let (pb, db, yb) = &b[uid];
        for axis in 0..3 {
            assert_eq!(
                pa[axis].to_bits(),
                pb[axis].to_bits(),
                "{what}: uid {uid} axis {axis}"
            );
        }
        assert_eq!(da.to_bits(), db.to_bits(), "{what}: uid {uid} diameter");
        assert_eq!(ya, yb, "{what}: uid {uid} payload");
    }
}

#[test]
fn box_batched_is_bitwise_identical_on_all_models() {
    for model in all_models(150) {
        let run = |batched: bool| {
            let mut sim = model.build(Param {
                box_batched_mechanics: batched,
                ..param()
            });
            sim.simulate(8);
            // Guards against vacuous parity: with the flag off, nothing may
            // route through the batched path. (With it on, whether it
            // engages depends on the model's density and mechanics; the
            // dedicated test below pins engagement on cell_clustering.)
            if !batched {
                assert_eq!(sim.stats().batched_force_queries, 0, "{}", model.name());
            }
            state(&sim)
        };
        assert_bitwise_eq(&run(true), &run(false), model.name());
    }
}

#[test]
fn box_batched_path_engages_on_dense_mechanics_models() {
    // The parity tests would pass vacuously if the batched path silently
    // declined everywhere; this pins that a dense mechanics model actually
    // routes its force queries through it. Only the first two iterations
    // are asserted: at this small test scale the clustering agents disperse
    // enough by iteration 3 that the grid correctly drops its dense-cloud
    // SoA cache (sparse regime) and mechanics falls back to the scalar
    // path — which is itself the regime-flip behavior under test.
    let model = biodynamo::models::CellClustering::new(150);
    let mut sim = model.build(param());
    sim.simulate(2);
    let stats = sim.stats();
    assert!(stats.force_calculations > 0);
    assert_eq!(
        stats.batched_force_queries, stats.force_calculations,
        "every dense-regime clustering force query should take the batched path"
    );
}

#[test]
fn box_batched_is_bitwise_identical_under_static_detection() {
    // Static detection consumes the batched path's neighbor_scratch (the
    // violation push set) and runs the mover-wake second query — both must
    // stay bitwise neutral, on one thread and on two.
    for threads in [1usize, 2] {
        let run = |batched: bool| {
            let model = biodynamo::models::CellClustering::new(150);
            let mut sim = model.build(Param {
                threads: Some(threads),
                numa_domains: Some(threads),
                seed: 4357,
                detect_static_agents: true,
                box_batched_mechanics: batched,
                ..Param::default()
            });
            sim.simulate(8);
            state(&sim)
        };
        assert_bitwise_eq(
            &run(true),
            &run(false),
            &format!("static detection, {threads} threads"),
        );
    }
}

fn grid_scatter_active(sim: &Simulation) -> bool {
    let grid = sim
        .environment()
        .as_uniform_grid()
        .expect("uniform-grid environment");
    assert!(grid.soa_active(), "SoA query cache inactive");
    grid.scattered_diameters().is_some()
}

#[test]
fn diameter_scatter_follows_the_declared_kernel_access() {
    // Mechanics on → the interaction force declares DIAMETERS → scattered.
    let model = biodynamo::models::CellClustering::new(150);
    let mut sim = model.build(param());
    sim.simulate(1);
    assert!(grid_scatter_active(&sim));

    // Epidemiology runs without mechanics and its kernels declare
    // POSITIONS|PAYLOADS — no diameter reads, so no scatter.
    let model = biodynamo::models::Epidemiology::new(150);
    let mut sim = model.build(param());
    sim.simulate(1);
    assert!(!grid_scatter_active(&sim));
}

/// A pipeline stage that declares it reads neighbor diameters (keeping the
/// scatter alive) without touching the simulation.
struct DiameterProbe;

impl Operation for DiameterProbe {
    fn name(&self) -> &str {
        "diameter_probe"
    }
    fn kind(&self) -> OpKind {
        OpKind::Standalone
    }
    fn neighbor_access(&self) -> NeighborAccess {
        NeighborAccess::POSITIONS.union(NeighborAccess::DIAMETERS)
    }
    fn run(&mut self, _ctx: &mut SimulationCtx<'_>) {}
}

fn dense_lattice_sim(neighbor_access: NeighborAccess) -> Simulation {
    let mut sim = Simulation::new(Param {
        enable_mechanics: false,
        neighbor_access,
        ..param()
    });
    for x in 0..6 {
        for y in 0..6 {
            for z in 0..6 {
                let uid = sim.new_uid();
                sim.add_agent(
                    Cell::new(uid)
                        .with_position(Real3::new(x as f64 * 5.0, y as f64 * 5.0, z as f64 * 5.0))
                        .with_diameter(5.0),
                );
            }
        }
    }
    sim
}

#[test]
fn custom_operation_keeps_the_scatter_alive() {
    // Without mechanics and with position-only kernels the scatter is off…
    let mut sim = dense_lattice_sim(NeighborAccess::POSITIONS);
    sim.simulate(1);
    assert!(!grid_scatter_active(&sim));

    // …and a custom operation's DIAMETERS declaration switches it on.
    let mut sim = dense_lattice_sim(NeighborAccess::POSITIONS);
    sim.scheduler_mut().add_op(DiameterProbe);
    sim.simulate(1);
    assert!(grid_scatter_active(&sim));
}

#[test]
fn scalar_fallback_serves_unscattered_diameters() {
    // A model that never scatters diameters (epidemiology) must still be
    // able to read them lazily through the generic query: run it with the
    // batched flag on (the path declines and falls back) and off — same
    // bits either way.
    let run = |batched: bool| {
        let model = biodynamo::models::Epidemiology::new(150);
        let mut sim = model.build(Param {
            box_batched_mechanics: batched,
            ..param()
        });
        sim.simulate(8);
        state(&sim)
    };
    assert_bitwise_eq(&run(true), &run(false), "epidemiology lazy fallback");
}
