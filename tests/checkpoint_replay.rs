//! Differential conformance harness for the checkpoint subsystem.
//!
//! The contract under test: **restore(checkpoint(sim)) followed by N steps
//! is bitwise identical to stepping the original simulation N times** — for
//! all six benchmark models, on all four environment backends, for full
//! checkpoints, full+delta chains, and checkpoints taken mid-iteration
//! (between the snapshot and environment-update pipeline stages).
//!
//! Identity is asserted on [`biodynamo::core::testing::SimFingerprint`],
//! which captures every step-relevant bit: agent positions/diameters as
//! IEEE-754 bit patterns, payloads, per-type bodies, behavior lists, static
//! flags, violation flags, diffusion concentrations, the iteration counter,
//! and the uid counter.

use std::sync::{Arc, Mutex};

use biodynamo::checkpoint::{
    baseline, checkpoint, checkpoint_delta, restore, restore_chain, restore_with, Registry,
};
use biodynamo::core::builtin;
use biodynamo::core::testing::{assert_identical, fingerprint};
use biodynamo::models::all_models;
use biodynamo::prelude::*;
use proptest::prelude::*;

/// Agent scale for the harness: big enough for real neighbor interactions
/// and multi-domain partitions, small enough to sweep the full matrix.
const SCALE: usize = 90;

fn param_for(env: EnvironmentKind, threads: usize, domains: usize) -> Param {
    Param {
        environment: env,
        threads: Some(threads),
        numa_domains: Some(domains),
        seed: 4242,
        ..Param::default()
    }
}

/// The core scenario: run `pre` iterations, checkpoint, run both the
/// original and the restored simulation `post` more iterations, and demand
/// bitwise-identical fingerprints at both the checkpoint and the end.
fn assert_replay(model: &dyn BenchmarkModel, param: Param, pre: usize, post: usize, label: &str) {
    let reg = Registry::with_builtin_types();
    let mut truth = model.build(param);
    truth.simulate(pre);
    let bytes = checkpoint(&truth).unwrap_or_else(|e| panic!("{label}: checkpoint failed: {e}"));
    let mut restored =
        restore(&bytes, &reg).unwrap_or_else(|e| panic!("{label}: restore failed: {e}"));
    assert_identical(
        &fingerprint(&truth),
        &fingerprint(&restored),
        &format!("{label}: at checkpoint"),
    );
    // Slot-exact restore: every domain must hold exactly its original
    // agents (the fingerprint keys by uid, so check placement separately).
    let (rma, rmb) = (truth.resource_manager(), restored.resource_manager());
    assert_eq!(
        rma.num_domains(),
        rmb.num_domains(),
        "{label}: domain count"
    );
    for d in 0..rma.num_domains() {
        assert_eq!(
            rma.num_in_domain(d),
            rmb.num_in_domain(d),
            "{label}: per-domain agent count, domain {d}"
        );
    }
    truth.simulate(post);
    restored.simulate(post);
    assert_identical(
        &fingerprint(&truth),
        &fingerprint(&restored),
        &format!("{label}: {post} steps after restore"),
    );
}

/// All six models × all four environment backends: restore → step-N is
/// bitwise identical to straight-run step-N.
#[test]
fn restore_then_step_is_bitwise_identical_on_every_backend() {
    for model in all_models(SCALE) {
        for env in EnvironmentKind::ALL {
            let label = format!("{} / {:?}", model.name(), env);
            assert_replay(model.as_ref(), param_for(env, 2, 2), 3, 5, &label);
        }
    }
}

/// Both thread settings of the CI matrix: topology is recorded in the
/// checkpoint and pinned on restore, so replay stays exact under either.
#[test]
fn restore_then_step_is_bitwise_identical_for_each_thread_topology() {
    for model in all_models(SCALE) {
        for (threads, domains) in [(1, 1), (4, 2)] {
            let label = format!("{} / {threads}t{domains}d", model.name());
            let param = param_for(EnvironmentKind::UniformGrid, threads, domains);
            assert_replay(model.as_ref(), param, 3, 4, &label);
        }
    }
}

/// A restored simulation replays exactly even when rebuilt under different
/// machine defaults: the COUNTERS section pins the captured topology, so the
/// builder's own thread/domain fields are overridden.
#[test]
fn restore_pins_the_captured_topology() {
    let models = all_models(SCALE);
    let model = &models[0];
    let mut truth = model.build(param_for(EnvironmentKind::UniformGrid, 4, 2));
    truth.simulate(3);
    let bytes = checkpoint(&truth).unwrap();
    let restored = restore(&bytes, &Registry::with_builtin_types()).unwrap();
    assert_eq!(
        restored.topology().num_threads(),
        4,
        "thread count must be pinned"
    );
    assert_eq!(
        restored.topology().num_domains(),
        2,
        "domain count must be pinned"
    );
}

/// Full checkpoint at k, deltas at k+2 and k+4: replaying the chain (and
/// every prefix of it) is bitwise identical to the straight run.
#[test]
fn full_plus_delta_chain_replays_identically() {
    let reg = Registry::with_builtin_types();
    for model in all_models(SCALE) {
        let label = model.name();
        let mut truth = model.build(param_for(EnvironmentKind::UniformGrid, 2, 2));
        truth.simulate(3);
        let full = checkpoint(&truth).unwrap();
        let base = baseline(&full).unwrap();

        truth.simulate(2);
        let delta1 = checkpoint_delta(&truth, &base).unwrap();
        let mid = fingerprint(&truth);

        truth.simulate(2);
        let delta2 = checkpoint_delta(&truth, &base).unwrap();
        let end = fingerprint(&truth);

        // Chain prefix: full + delta1 lands on the mid-state…
        let from_mid = restore_chain(&full, &[&delta1], &reg)
            .unwrap_or_else(|e| panic!("{label}: chain restore (1 delta): {e}"));
        assert_identical(&mid, &fingerprint(&from_mid), &format!("{label}: full+d1"));

        // …the full chain lands on the end state…
        let from_end = restore_chain(&full, &[&delta1, &delta2], &reg)
            .unwrap_or_else(|e| panic!("{label}: chain restore (2 deltas): {e}"));
        assert_identical(
            &end,
            &fingerprint(&from_end),
            &format!("{label}: full+d1+d2"),
        );

        // …and stepping on from the prefix matches the straight run.
        let mut replay = restore_chain(&full, &[&delta1], &reg).unwrap();
        replay.simulate(2);
        assert_identical(
            &end,
            &fingerprint(&replay),
            &format!("{label}: full+d1 then 2 steps"),
        );
    }
}

/// When only a diffusion grid changes between base and delta (agent phase
/// disabled), the delta skips the agent section — it must still replay
/// identically and come out much smaller than the full checkpoint.
#[test]
fn delta_skips_unchanged_agent_section() {
    let reg = Registry::with_builtin_types();
    let mut sim = Simulation::new(Param {
        threads: Some(2),
        numa_domains: Some(2),
        interaction_radius: Some(15.0),
        ..Param::default()
    });
    for i in 0..200 {
        let uid = sim.new_uid();
        sim.add_agent(
            Cell::new(uid)
                .with_position(Real3::new(
                    (i % 10) as f64 * 12.0,
                    ((i / 10) % 10) as f64 * 12.0,
                    (i / 100) as f64 * 12.0,
                ))
                .with_diameter(10.0),
        );
    }
    let g = sim.add_diffusion_grid(DiffusionGrid::new(
        "substance",
        0.2,
        0.01,
        8,
        Real3::splat(0.0),
        120.0,
    ));
    sim.diffusion_grid_mut(g)
        .increase_concentration(Real3::splat(60.0), 5.0);
    // Freeze the agent arrays: only the diffusion op keeps running.
    sim.scheduler_mut().set_enabled(builtin::AGENT_OPS, false);
    sim.scheduler_mut()
        .set_enabled(builtin::AGENT_SORTING, false);

    sim.simulate(2);
    let full = checkpoint(&sim).unwrap();
    let base = baseline(&full).unwrap();

    sim.simulate(3); // grid versions advance, agent generation does not
    let delta = checkpoint_delta(&sim, &base).unwrap();
    assert!(
        delta.len() < full.len() / 2,
        "delta should omit the agent section: {} vs {} bytes",
        delta.len(),
        full.len()
    );
    let restored = restore_chain(&full, &[&delta], &reg).unwrap();
    assert_identical(
        &fingerprint(&sim),
        &fingerprint(&restored),
        "agent-skipping delta",
    );
}

/// A pipeline probe that serializes the simulation from *inside* an
/// iteration — after the snapshot stage, before environment update — the
/// exact window ISSUE's mid-window requirement names.
struct MidWindowProbe {
    at: u64,
    out: Arc<Mutex<Option<Vec<u8>>>>,
}

impl Operation for MidWindowProbe {
    fn name(&self) -> &str {
        "ckpt_probe"
    }
    fn kind(&self) -> OpKind {
        OpKind::Pre
    }
    fn run(&mut self, ctx: &mut SimulationCtx<'_>) {
        if ctx.iteration() == self.at {
            let bytes = checkpoint(ctx.sim).expect("mid-window checkpoint");
            *self.out.lock().unwrap() = Some(bytes);
        }
    }
}

/// Same name and position as the probe, but inert: registered by the
/// restore builder so the captured scheduler state resolves.
struct InertProbe;

impl Operation for InertProbe {
    fn name(&self) -> &str {
        "ckpt_probe"
    }
    fn kind(&self) -> OpKind {
        OpKind::Pre
    }
    fn run(&mut self, _ctx: &mut SimulationCtx<'_>) {}
}

/// Checkpoint taken mid-window (between snapshot and environment_update):
/// the stored iteration counter points at the last completed iteration, so
/// restore + step replays the interrupted iteration from its start and the
/// final states are bitwise identical.
#[test]
fn mid_window_checkpoint_replays_the_interrupted_iteration() {
    let reg = Registry::with_builtin_types();
    let total = 7;
    let capture_at = 4; // inside iteration 4 ⇒ stored counter is 3
    for model in all_models(SCALE) {
        let label = model.name();
        let slot = Arc::new(Mutex::new(None));
        let mut truth = model.build(param_for(EnvironmentKind::UniformGrid, 2, 2));
        let added = truth.scheduler_mut().add_op_after(
            builtin::SNAPSHOT,
            MidWindowProbe {
                at: capture_at,
                out: Arc::clone(&slot),
            },
        );
        assert!(added, "{label}: probe must sit right after the snapshot op");
        truth.simulate(total);

        let bytes = slot.lock().unwrap().take().expect("probe captured");
        let mut restored = restore_with(&bytes, &reg, |param| {
            let mut sim = Simulation::new(param);
            assert!(sim
                .scheduler_mut()
                .add_op_after(builtin::SNAPSHOT, InertProbe));
            sim
        })
        .unwrap_or_else(|e| panic!("{label}: mid-window restore failed: {e}"));

        assert_eq!(
            restored.iteration(),
            capture_at - 1,
            "{label}: mid-window checkpoint stores the last completed iteration"
        );
        restored.simulate(total - (capture_at as usize - 1));
        assert_identical(
            &fingerprint(&truth),
            &fingerprint(&restored),
            &format!("{label}: mid-window replay"),
        );
    }
}

/// A mid-window checkpoint whose pipeline contains a custom op restores only
/// through a builder that re-registers it; plain restore reports the op by
/// name instead of guessing.
#[test]
fn mid_window_restore_without_the_custom_op_is_a_typed_error() {
    use biodynamo::checkpoint::CheckpointError;
    let models = all_models(SCALE);
    let model = &models[0];
    let slot = Arc::new(Mutex::new(None));
    let mut truth = model.build(param_for(EnvironmentKind::UniformGrid, 2, 2));
    truth.scheduler_mut().add_op_after(
        builtin::SNAPSHOT,
        MidWindowProbe {
            at: 2,
            out: Arc::clone(&slot),
        },
    );
    truth.simulate(3);
    let bytes = slot.lock().unwrap().take().unwrap();
    let err = restore(&bytes, &Registry::with_builtin_types())
        .err()
        .unwrap();
    match err {
        CheckpointError::UnknownOp { name } => assert_eq!(name, "ckpt_probe"),
        other => panic!("expected UnknownOp, got {other}"),
    }
}

/// A checkpoint captured under one shard count restores into *any other*
/// shard count and replays bitwise identically: the SHARDS section is
/// validation-only, the partition is a pure function of agent state, and
/// the `halo_exchange` op exists in every pipeline — so the restored run
/// simply re-partitions under its own K at the first exchange.
#[test]
fn restore_into_different_shard_count_replays_identically() {
    let reg = Registry::with_builtin_types();
    for model in all_models(SCALE) {
        let label = model.name();
        let mut truth = model.build(Param {
            shards: 4,
            ..param_for(EnvironmentKind::UniformGrid, 1, 1)
        });
        truth.simulate(3);
        let bytes = checkpoint(&truth).unwrap_or_else(|e| panic!("{label}: checkpoint: {e}"));
        truth.simulate(4);
        let end = fingerprint(&truth);
        for k in [1usize, 2, 7] {
            let mut restored = restore_with(&bytes, &reg, |mut p| {
                assert_eq!(p.shards, 4, "PARAM section carries the captured K");
                p.shards = k;
                Simulation::new(p)
            })
            .unwrap_or_else(|e| panic!("{label}: restore into K={k}: {e}"));
            restored.simulate(4);
            assert_identical(
                &end,
                &fingerprint(&restored),
                &format!("{label}: captured at K=4, replayed at K={k}"),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Satellite 2: random (model, checkpoint iteration, backend, opt level)
    /// tuples round-trip checkpoint → restore → run to bitwise-identical
    /// state.
    #[test]
    fn prop_random_config_round_trips(
        model_idx in 0usize..6,
        pre in 1usize..5,
        backend in 0usize..4,
        opt in 0usize..6,
    ) {
        let models = all_models(60);
        let model = &models[model_idx];
        let param = Param {
            environment: EnvironmentKind::ALL[backend],
            threads: Some(2),
            numa_domains: Some(2),
            seed: 91,
            ..Param::default().apply_opt_level(OptLevel::ALL[opt])
        };
        let label = format!(
            "{} pre={pre} env={:?} opt={:?}",
            model.name(),
            EnvironmentKind::ALL[backend],
            OptLevel::ALL[opt],
        );
        let reg = Registry::with_builtin_types();
        let mut truth = model.build(param);
        truth.simulate(pre);
        let bytes = checkpoint(&truth).unwrap_or_else(|e| panic!("{label}: {e}"));
        let mut restored = restore(&bytes, &reg).unwrap_or_else(|e| panic!("{label}: {e}"));
        truth.simulate(3);
        restored.simulate(3);
        let div = biodynamo::core::testing::first_divergence(
            &fingerprint(&truth),
            &fingerprint(&restored),
        );
        prop_assert!(div.is_none(), "{label}: {}", div.unwrap());
    }
}
