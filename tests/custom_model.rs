//! Integration: building a complete custom simulation against the public
//! API only (what a downstream user of the library would write) — custom
//! agent behavior, diffusion-coupled chemotaxis, division, death, and a
//! standalone operation, across optimization presets.

use biodynamo::core::{
    clone_behavior_box, new_behavior_box, Behavior, BehaviorBox, BehaviorControl,
};
use biodynamo::core::{AgentContext, MemoryManager};
use biodynamo::prelude::*;

/// A bacterium: secretes an attractant, climbs its gradient, divides when
/// grown, dies of starvation in crowded areas.
#[derive(Clone)]
struct Bacterium {
    grown: f64,
}

impl Behavior for Bacterium {
    fn run(&mut self, agent: &mut dyn Agent, ctx: &mut AgentContext<'_>) -> BehaviorControl {
        let pos = agent.position();
        // Secrete attractant and climb its gradient.
        ctx.secrete(0, pos, 1.0);
        let gradient = ctx.substance(0).gradient_at(pos);
        let norm = gradient.norm();
        if norm > 1e-12 {
            agent.set_position(pos + gradient * (2.0 / norm).min(20.0) * ctx.dt);
        }
        // Starve in overcrowded regions.
        let crowd = ctx.count_neighbors(pos, 8.0, |_| true);
        if crowd > 14 && ctx.rng.chance(0.3) {
            ctx.remove_self();
            return BehaviorControl::Keep;
        }
        // Grow and divide.
        self.grown += ctx.dt;
        if self.grown > 4.0 {
            self.grown = 0.0;
            let uid = ctx.next_uid();
            let dir = ctx.rng.unit_vector();
            ctx.new_agent(
                Cell::new(uid)
                    .with_position(pos + dir * 3.0)
                    .with_diameter(agent.diameter()),
            );
        }
        BehaviorControl::Keep
    }
    fn clone_behavior(&self, mm: &MemoryManager, domain: usize) -> BehaviorBox {
        clone_behavior_box(self, mm, domain)
    }
    fn name(&self) -> &'static str {
        "Bacterium"
    }
}

fn build(param: Param) -> Simulation {
    let mut param = param;
    param.simulation_time_step = 1.0;
    param.interaction_radius = Some(10.0);
    let mut sim = Simulation::new(param);
    sim.add_diffusion_grid(DiffusionGrid::new(
        "attractant",
        0.2,
        0.01,
        16,
        Real3::ZERO,
        120.0,
    ));
    let mut rng = SimRng::new(11);
    for _ in 0..80 {
        let uid = sim.new_uid();
        let mut cell = Cell::new(uid)
            .with_position(rng.point_in_cube(20.0, 100.0))
            .with_diameter(5.0);
        cell.base_mut().add_behavior(new_behavior_box(
            Bacterium { grown: 0.0 },
            sim.memory_manager(),
            0,
        ));
        sim.add_agent(cell);
    }
    sim
}

#[test]
fn custom_model_lifecycle() {
    let mut sim = build(Param {
        threads: Some(2),
        numa_domains: Some(2),
        ..Param::default()
    });
    sim.simulate(12);
    let stats = sim.stats();
    assert!(stats.agents_added > 0, "divisions: {stats:?}");
    assert!(sim.num_agents() > 0);
    // Secretion ended up in the grid.
    assert!(sim.diffusion_grid(0).total() > 0.0);
    sim.for_each_agent(|_, a| assert!(a.position().is_finite()));
}

#[test]
fn custom_model_runs_under_all_presets() {
    for level in OptLevel::ALL {
        let param = Param {
            threads: Some(2),
            numa_domains: Some(2),
            ..Param::default()
        }
        .apply_opt_level(level);
        let mut sim = build(param);
        sim.simulate(8);
        assert!(sim.num_agents() > 0, "{level:?}");
    }
}

#[test]
fn standalone_op_observes_every_iteration() {
    let mut sim = build(Param {
        threads: Some(2),
        numa_domains: Some(1),
        ..Param::default()
    });
    let counter = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let c = counter.clone();
    sim.add_standalone_op(
        "census",
        1,
        Box::new(move |sim| {
            assert!(sim.num_agents() > 0);
            c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }),
    );
    sim.simulate(7);
    assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 7);
}

#[test]
fn standalone_op_frequency_is_honored() {
    let mut sim = build(Param {
        threads: Some(1),
        numa_domains: Some(1),
        ..Param::default()
    });
    let counter = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let c = counter.clone();
    sim.add_standalone_op(
        "sparse",
        3,
        Box::new(move |_| {
            c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }),
    );
    sim.simulate(10); // fires on iterations 3, 6, 9
    assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 3);
}

/// A user-defined pipeline stage: samples the population every 4th
/// iteration through the first-class `Operation` API.
struct PopulationProbe {
    samples: std::sync::Arc<std::sync::Mutex<Vec<(u64, usize)>>>,
}

impl Operation for PopulationProbe {
    fn name(&self) -> &str {
        "population_probe"
    }
    fn kind(&self) -> OpKind {
        OpKind::Post
    }
    fn frequency(&self) -> u64 {
        4
    }
    fn run(&mut self, ctx: &mut SimulationCtx<'_>) {
        let sample = (ctx.iteration(), ctx.num_agents());
        self.samples.lock().unwrap().push(sample);
    }
}

#[test]
fn custom_operation_through_builder_runs_at_frequency() {
    // The same bacterium model, but built through the fluent builder with a
    // user-defined Operation registered as a pipeline stage.
    let samples = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let mut sim = Simulation::builder()
        .threads(2)
        .numa_domains(2)
        .time_step(1.0)
        .interaction_radius(10.0)
        .diffusion_grid(DiffusionGrid::new(
            "attractant",
            0.2,
            0.01,
            16,
            Real3::ZERO,
            120.0,
        ))
        .operation(PopulationProbe {
            samples: samples.clone(),
        })
        .build();
    let mut rng = SimRng::new(11);
    for _ in 0..80 {
        let uid = sim.new_uid();
        let mut cell = Cell::new(uid)
            .with_position(rng.point_in_cube(20.0, 100.0))
            .with_diameter(5.0);
        cell.base_mut().add_behavior(new_behavior_box(
            Bacterium { grown: 0.0 },
            sim.memory_manager(),
            0,
        ));
        sim.add_agent(cell);
    }
    sim.simulate(12);
    // Frequency 4 → samples at iterations 4, 8, 12, observing the committed
    // population (the probe is a Post op, so divisions of the same
    // iteration are already visible).
    let samples = samples.lock().unwrap();
    assert_eq!(
        samples.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
        vec![4, 8, 12]
    );
    for &(_, agents) in samples.iter() {
        assert!(agents > 0);
    }
    assert_eq!(samples.last().unwrap().1, sim.num_agents());
    // The per-op timing shows up in the simulation's bucket report under
    // the op's own name.
    assert!(sim.time_buckets().get("population_probe").is_some());
}

#[test]
fn chemotaxis_aggregates_population() {
    // Self-attracting walkers must cluster: the mean pairwise distance
    // shrinks over time.
    let spread = |sim: &Simulation| {
        let mut positions = Vec::new();
        sim.for_each_agent(|_, a| positions.push(a.position()));
        let center = positions.iter().fold(Real3::ZERO, |acc, p| acc + *p) / positions.len() as f64;
        positions.iter().map(|p| p.distance(&center)).sum::<f64>() / positions.len() as f64
    };
    let mut sim = build(Param {
        threads: Some(2),
        numa_domains: Some(1),
        ..Param::default()
    });
    let before = spread(&sim);
    sim.simulate(25);
    let after = spread(&sim);
    assert!(
        after < before,
        "attractant-climbing must aggregate: {before:.1} -> {after:.1}"
    );
}
