//! Integration: reproducibility guarantees (DESIGN.md §4 "Determinism").
//!
//! With one thread and a fixed seed, runs are bit-reproducible. Agent uids
//! are derived from parent uids (not from scheduling), so population-level
//! outcomes of neighbor-independent models are invariant under thread
//! count, NUMA domains, sorting, and environment choice.
//!
//! Tests that stay on the default uniform grid honor `BDM_TEST_SHARDS`
//! (see [`test_shards`]): CI reruns this suite with the sharded engine and
//! every guarantee must hold bit-for-bit there too.

use std::collections::BTreeMap;

use biodynamo::core::testing::test_shards;
use biodynamo::models::{all_models, BenchmarkModel};
use biodynamo::prelude::*;

/// Snapshot of a finished simulation keyed by stable uid.
fn snapshot(sim: &Simulation) -> BTreeMap<u64, (Real3, f64, u64)> {
    let mut map = BTreeMap::new();
    sim.for_each_agent(|_, a| {
        let prev = map.insert(a.uid().0, (a.position(), a.diameter(), a.payload()));
        assert!(prev.is_none(), "duplicate uid {:?}", a.uid());
    });
    map
}

fn run(model: &dyn BenchmarkModel, param: Param, iterations: usize) -> Simulation {
    let mut sim = model.build(param);
    sim.simulate(iterations);
    sim
}

#[test]
fn single_thread_runs_are_bit_reproducible() {
    for model in all_models(120) {
        let param = || Param {
            threads: Some(1),
            numa_domains: Some(1),
            seed: 99,
            shards: test_shards(),
            ..Param::default()
        };
        let a = snapshot(&run(model.as_ref(), param(), 10));
        let b = snapshot(&run(model.as_ref(), param(), 10));
        assert_eq!(a.len(), b.len(), "{}", model.name());
        for (uid, (pa, da, ta)) in &a {
            let (pb, db, tb) = &b[uid];
            assert_eq!(pa, pb, "{} uid {uid}: position", model.name());
            assert_eq!(da, db, "{} uid {uid}: diameter", model.name());
            assert_eq!(ta, tb, "{} uid {uid}: payload", model.name());
        }
    }
}

#[test]
fn different_seeds_differ() {
    let model = biodynamo::models::Epidemiology::new(150);
    let mk = |seed| Param {
        threads: Some(1),
        numa_domains: Some(1),
        seed,
        shards: test_shards(),
        ..Param::default()
    };
    let a = snapshot(&run(&model, mk(1), 10));
    let b = snapshot(&run(&model, mk(2), 10));
    // Random walks with different seeds must diverge.
    let same = a
        .iter()
        .filter(|(uid, (p, ..))| b.get(uid).is_some_and(|(q, ..)| p == q))
        .count();
    assert!(
        same < a.len() / 2,
        "{same}/{} agents identical across seeds",
        a.len()
    );
}

#[test]
fn population_invariant_under_thread_count() {
    // Proliferation divisions depend only on per-agent state; the final
    // population and uid set must not depend on parallelism.
    let model = biodynamo::models::CellProliferation::new(125);
    let uids = |threads: usize, domains: usize| {
        let sim = run(
            &model,
            Param {
                threads: Some(threads),
                numa_domains: Some(domains),
                shards: test_shards(),
                ..Param::default()
            },
            12,
        );
        let mut v: Vec<u64> = Vec::new();
        sim.for_each_agent(|_, a| v.push(a.uid().0));
        v.sort_unstable();
        v
    };
    let one = uids(1, 1);
    assert_eq!(one, uids(2, 1), "2 threads");
    assert_eq!(one, uids(2, 2), "2 threads / 2 domains");
    assert_eq!(one, uids(4, 2), "oversubscribed");
}

#[test]
fn population_invariant_under_sorting_and_environment() {
    let model = biodynamo::models::CellProliferation::new(125);
    let count = |mutate: &dyn Fn(&mut Param)| {
        let mut param = Param {
            threads: Some(2),
            numa_domains: Some(2),
            ..Param::default()
        };
        mutate(&mut param);
        run(&model, param, 12).num_agents()
    };
    let baseline = count(&|_| {});
    assert_eq!(baseline, count(&|p| p.agent_sort_frequency = Some(1)));
    assert_eq!(
        baseline,
        count(&|p| {
            p.agent_sort_frequency = Some(1);
            p.sort_use_extra_memory = true;
        })
    );
    assert_eq!(
        baseline,
        count(&|p| p.environment = EnvironmentKind::KdTree)
    );
    assert_eq!(
        baseline,
        count(&|p| p.environment = EnvironmentKind::Octree)
    );
    assert_eq!(baseline, count(&|p| p.use_pool_allocator = false));
}

#[test]
fn scheduler_extraction_preserves_bit_reproducibility() {
    // The op-extraction refactor must not change execution order: a
    // builder-built simulation (scheduler pipeline) and a Param-built one
    // must produce bit-identical states, and injecting a read-only custom
    // operation must not perturb the simulation either.
    struct ReadOnlyProbe;
    impl Operation for ReadOnlyProbe {
        fn name(&self) -> &str {
            "readonly_probe"
        }
        fn kind(&self) -> OpKind {
            OpKind::Standalone
        }
        fn frequency(&self) -> u64 {
            2
        }
        fn run(&mut self, ctx: &mut SimulationCtx<'_>) {
            let _ = ctx.num_agents();
        }
    }

    for model in all_models(120) {
        let param = Param {
            threads: Some(1),
            numa_domains: Some(1),
            seed: 99,
            shards: test_shards(),
            ..Param::default()
        };
        let via_param = snapshot(&run(model.as_ref(), param.clone(), 10));
        let mut built = model.build(param.clone());
        // Same pipeline, registered through the public scheduler API.
        built.scheduler_mut().add_op(ReadOnlyProbe);
        built.simulate(10);
        let via_builder = snapshot(&built);
        assert_eq!(
            via_param,
            via_builder,
            "{}: scheduler pipeline must be bit-identical",
            model.name()
        );
    }
}

#[test]
fn epidemiology_infections_are_seed_deterministic() {
    // SIR state transitions draw from the per-agent deterministic RNG
    // stream; infection counts must reproduce exactly on one thread.
    let model = biodynamo::models::Epidemiology::new(200);
    let infected = || {
        let sim = run(
            &model,
            Param {
                threads: Some(1),
                numa_domains: Some(1),
                seed: 5,
                shards: test_shards(),
                ..Param::default()
            },
            15,
        );
        model.validate(&sim).into_iter().collect::<BTreeMap<_, _>>()
    };
    assert_eq!(infected(), infected());
}

/// Cross-backend differential suite: for every model, the brute-force,
/// uniform-grid, kd-tree, and octree environments must agree on the final
/// state. Discrete state (uid sets, payloads, type tags) must match exactly;
/// positions, diameters, and concentrations are compared within a tolerance
/// because backends enumerate neighbors in different orders and FP summation
/// order legitimately moves the last few mantissa bits. On failure the first
/// diverging agent index is reported.
#[test]
fn all_backends_agree_on_final_state() {
    use biodynamo::core::testing::{fingerprint, first_divergence_within};

    const TOL: f64 = 1e-6;
    for model in all_models(100) {
        let mk = |env| Param {
            environment: env,
            threads: Some(2),
            numa_domains: Some(2),
            seed: 77,
            ..Param::default()
        };
        let reference = fingerprint(&run(model.as_ref(), mk(EnvironmentKind::Brute), 8));
        for env in EnvironmentKind::ALL {
            if env == EnvironmentKind::Brute {
                continue;
            }
            let candidate = fingerprint(&run(model.as_ref(), mk(env), 8));
            if let Some(divergence) = first_divergence_within(&reference, &candidate, TOL) {
                panic!(
                    "{} diverges between Brute and {env:?}: {divergence}",
                    model.name()
                );
            }
        }
    }
}
