//! Integration: the three neighbor-search environments (paper Figure 11)
//! are interchangeable — same simulation semantics, different index
//! structures — and agree with a brute-force reference through the engine.

use biodynamo::env::{
    neighbors_of, BruteForceEnvironment, Environment, EnvironmentKind, KdTreeEnvironment,
    OctreeEnvironment, SliceCloud, UniformGridEnvironment,
};
use biodynamo::models::{all_models, BenchmarkModel};
use biodynamo::prelude::*;
use biodynamo::util::SimRng;

fn param_with(kind: EnvironmentKind) -> Param {
    Param {
        threads: Some(2),
        numa_domains: Some(2),
        environment: kind,
        ..Param::default()
    }
}

const KINDS: [EnvironmentKind; 3] = [
    EnvironmentKind::UniformGrid,
    EnvironmentKind::KdTree,
    EnvironmentKind::Octree,
];

#[test]
fn every_model_runs_on_every_environment() {
    for model in all_models(100) {
        for kind in KINDS {
            let mut sim = model.build(param_with(kind));
            sim.simulate(6);
            assert!(sim.num_agents() > 0, "{} on {kind:?}", model.name());
            sim.for_each_agent(|_, a| assert!(a.position().is_finite()));
        }
    }
}

#[test]
fn environments_agree_on_population_outcomes() {
    // Proliferation divisions are neighbor-independent: all three indexes
    // must produce the same uid set.
    let model = biodynamo::models::CellProliferation::new(64);
    let mut uid_sets = Vec::new();
    for kind in KINDS {
        let mut sim = model.build(param_with(kind));
        sim.simulate(10);
        let mut uids: Vec<u64> = Vec::new();
        sim.for_each_agent(|_, a| uids.push(a.uid().0));
        uids.sort_unstable();
        uid_sets.push(uids);
    }
    assert_eq!(uid_sets[0], uid_sets[1]);
    assert_eq!(uid_sets[0], uid_sets[2]);
}

#[test]
fn all_indexes_match_brute_force_through_common_interface() {
    // Direct cross-check of the environment trait (the engine-level twin of
    // the per-crate property tests).
    let mut rng = SimRng::new(42);
    let positions: Vec<Real3> = (0..300).map(|_| rng.point_in_cube(0.0, 80.0)).collect();
    let cloud = SliceCloud(&positions);
    let radius = 12.0;

    let mut reference = BruteForceEnvironment::new();
    reference.update(&cloud, radius);

    let mut envs: Vec<Box<dyn Environment>> = vec![
        Box::new(UniformGridEnvironment::new()),
        Box::new(KdTreeEnvironment::new()),
        Box::new(OctreeEnvironment::new()),
    ];
    for env in &mut envs {
        env.update(&cloud, radius);
        for (i, &p) in positions.iter().enumerate().step_by(7) {
            let expected = neighbors_of(&reference, &cloud, p, Some(i), radius);
            let got = neighbors_of(env.as_ref(), &cloud, p, Some(i), radius);
            assert_eq!(got, expected, "{} @ query {i}", env.name());
        }
    }
}

#[test]
fn uniform_grid_is_rebuildable_across_scale_changes() {
    // The timestamped-box rebuild (Section 3.1) must stay correct when the
    // population geometry changes drastically between iterations.
    let mut env = UniformGridEnvironment::new();
    let mut rng = SimRng::new(7);
    for round in 0..5 {
        let extent = 20.0 * (round + 1) as f64;
        let positions: Vec<Real3> = (0..100 + round * 50)
            .map(|_| rng.point_in_cube(0.0, extent))
            .collect();
        let cloud = SliceCloud(&positions);
        env.update(&cloud, 8.0);
        let mut reference = BruteForceEnvironment::new();
        reference.update(&cloud, 8.0);
        for (i, &p) in positions.iter().enumerate().step_by(13) {
            assert_eq!(
                neighbors_of(&env, &cloud, p, Some(i), 8.0),
                neighbors_of(&reference, &cloud, p, Some(i), 8.0),
                "round {round} query {i}"
            );
        }
    }
}

#[test]
fn environment_memory_reporting_is_sane() {
    for kind in KINDS {
        let model = biodynamo::models::CellClustering::new(200);
        let mut sim = model.build(param_with(kind));
        sim.simulate(2);
        let bytes = sim.environment_memory_bytes();
        assert!(bytes > 0, "{kind:?} must report index memory");
        assert!(
            bytes < 512 << 20,
            "{kind:?} reports implausible index size: {bytes}"
        );
    }
}

#[test]
fn interaction_radius_is_respected() {
    // Agents outside the interaction radius must never be visited.
    let positions = vec![
        Real3::new(0.0, 0.0, 0.0),
        Real3::new(5.0, 0.0, 0.0),
        Real3::new(11.0, 0.0, 0.0), // outside radius 10 of the origin
    ];
    let cloud = SliceCloud(&positions);
    for kind in KINDS {
        let mut env = kind.create();
        env.update(&cloud, 10.0);
        let n = neighbors_of(env.as_ref(), &cloud, positions[0], Some(0), 10.0);
        assert_eq!(n, vec![1], "{kind:?}");
    }
}
