//! Integration: edge cases and failure injection — empty simulations,
//! mass extinction, explosive growth, degenerate geometry, allocator
//! pressure, corrupt checkpoints, and supervised-recovery conformance
//! (every injected fault kind must recover to a state bitwise identical to
//! an undisturbed run). The engine must never panic or corrupt state.

use biodynamo::core::{
    clone_behavior_box, new_behavior_box, Behavior, BehaviorBox, BehaviorControl,
};
use biodynamo::core::{AgentContext, MemoryManager};
use biodynamo::prelude::*;

fn small_param() -> Param {
    Param {
        threads: Some(2),
        numa_domains: Some(2),
        ..Param::default()
    }
}

#[test]
fn empty_simulation_steps() {
    let mut sim = Simulation::new(small_param());
    sim.simulate(5);
    assert_eq!(sim.num_agents(), 0);
    assert_eq!(sim.iteration(), 5);
}

/// Behavior that removes its agent on a chosen iteration.
#[derive(Clone)]
struct DieAt(u64);

impl Behavior for DieAt {
    fn run(&mut self, _agent: &mut dyn Agent, ctx: &mut AgentContext<'_>) -> BehaviorControl {
        if ctx.iteration >= self.0 {
            ctx.remove_self();
        }
        BehaviorControl::Keep
    }
    fn clone_behavior(&self, mm: &MemoryManager, domain: usize) -> BehaviorBox {
        clone_behavior_box(self, mm, domain)
    }
    fn name(&self) -> &'static str {
        "DieAt"
    }
}

#[test]
fn mass_extinction_in_one_iteration() {
    // All agents removed in the same commit exercises the full swap
    // machinery of paper Figure 1 with new_size = 0.
    for parallel in [false, true] {
        let mut param = small_param();
        param.parallel_add_remove = parallel;
        let mut sim = Simulation::new(param);
        for i in 0..97 {
            let uid = sim.new_uid();
            let mut cell = Cell::new(uid).with_position(Real3::splat(i as f64 * 15.0));
            cell.base_mut()
                .add_behavior(new_behavior_box(DieAt(2), sim.memory_manager(), 0));
            sim.add_agent(cell);
        }
        sim.simulate(4);
        assert_eq!(sim.num_agents(), 0, "parallel={parallel}");
        assert_eq!(sim.stats().agents_removed, 97);
        // The engine keeps running fine after extinction.
        sim.simulate(3);
        assert_eq!(sim.num_agents(), 0);
    }
}

/// Behavior that spawns `n` children on the first iteration.
#[derive(Clone)]
struct SpawnBurst(usize);

impl Behavior for SpawnBurst {
    fn run(&mut self, agent: &mut dyn Agent, ctx: &mut AgentContext<'_>) -> BehaviorControl {
        if ctx.iteration == 1 {
            for k in 0..self.0 {
                let uid = ctx.next_uid();
                ctx.new_agent(
                    Cell::new(uid)
                        .with_position(agent.position() + Real3::splat(0.5 + k as f64))
                        .with_diameter(2.0),
                );
            }
            BehaviorControl::RemoveSelf
        } else {
            BehaviorControl::Keep
        }
    }
    fn clone_behavior(&self, mm: &MemoryManager, domain: usize) -> BehaviorBox {
        clone_behavior_box(self, mm, domain)
    }
    fn name(&self) -> &'static str {
        "SpawnBurst"
    }
}

#[test]
fn explosive_growth_commits_in_parallel() {
    let mut sim = Simulation::new(small_param());
    for i in 0..8 {
        let uid = sim.new_uid();
        let mut cell = Cell::new(uid).with_position(Real3::splat(i as f64 * 100.0));
        cell.base_mut()
            .add_behavior(new_behavior_box(SpawnBurst(50), sim.memory_manager(), 0));
        sim.add_agent(cell);
    }
    sim.simulate(2);
    assert_eq!(sim.num_agents(), 8 + 8 * 50);
    assert_eq!(sim.stats().agents_added, 400);
    // Children are visible to later iterations (they participate in ops).
    sim.simulate(1);
    assert_eq!(sim.num_agents(), 408);
}

#[test]
fn single_agent_simulation() {
    let mut sim = Simulation::new(small_param());
    let uid = sim.new_uid();
    sim.add_agent(Cell::new(uid).with_diameter(10.0));
    sim.simulate(10);
    assert_eq!(sim.num_agents(), 1);
    sim.for_each_agent(|_, a| assert!(a.position().is_finite()));
}

#[test]
fn coincident_agents_do_not_explode() {
    // All agents at exactly the same point: the force law must not produce
    // NaN (zero-distance guard) and max_displacement caps the separation.
    let mut sim = Simulation::new(small_param());
    for _ in 0..20 {
        let uid = sim.new_uid();
        sim.add_agent(
            Cell::new(uid)
                .with_position(Real3::splat(50.0))
                .with_diameter(10.0),
        );
    }
    sim.simulate(5);
    sim.for_each_agent(|_, a| {
        assert!(
            a.position().is_finite(),
            "position exploded: {:?}",
            a.position()
        );
        assert!(
            a.position().distance(&Real3::splat(50.0)) < 100.0,
            "displacement must stay capped"
        );
    });
}

#[test]
fn zero_iterations_is_a_noop() {
    let model = biodynamo::models::CellClustering::new(60);
    let mut sim = model.build(small_param());
    let before = sim.num_agents();
    sim.simulate(0);
    assert_eq!(sim.num_agents(), before);
    assert_eq!(sim.iteration(), 0);
}

#[test]
fn extreme_sort_frequency_is_safe() {
    // Sorting every iteration including while agents are added/removed.
    let model = biodynamo::models::Oncology::new(120);
    let mut param = small_param();
    param.agent_sort_frequency = Some(1);
    param.sort_use_extra_memory = true;
    let mut sim = model.build(param);
    sim.simulate(15);
    assert!(sim.num_agents() > 0);
    assert!(sim.stats().sorts > 0);
    // Uids remain unique after repeated relocation.
    let mut uids: Vec<u64> = Vec::new();
    sim.for_each_agent(|_, a| uids.push(a.uid().0));
    uids.sort_unstable();
    let before = uids.len();
    uids.dedup();
    assert_eq!(uids.len(), before, "duplicate uids after sorting");
}

#[test]
fn more_domains_than_needed_is_clamped_safely() {
    // 4 virtual domains on 4 threads with only 3 agents: some domains own
    // zero agents; iteration and sorting must handle empty domains.
    let mut param = Param {
        threads: Some(4),
        numa_domains: Some(4),
        agent_sort_frequency: Some(2),
        ..Param::default()
    };
    param.sort_use_extra_memory = true;
    let mut sim = Simulation::new(param);
    for i in 0..3 {
        let uid = sim.new_uid();
        sim.add_agent(Cell::new(uid).with_position(Real3::splat(i as f64 * 30.0)));
    }
    sim.simulate(6);
    assert_eq!(sim.num_agents(), 3);
}

#[test]
fn allocator_survives_churn() {
    // Repeated create/destroy cycles stress pool reuse (free-list
    // migrations between thread-private and central lists, Figure 4B).
    let mut sim = Simulation::new(small_param());
    for round in 0..5u64 {
        for i in 0..60 {
            let uid = sim.new_uid();
            let mut cell = Cell::new(uid).with_position(Real3::splat(i as f64 * 12.0));
            cell.base_mut().add_behavior(new_behavior_box(
                DieAt(round * 3 + 2),
                sim.memory_manager(),
                0,
            ));
            sim.add_agent(cell);
        }
        sim.simulate(3);
    }
    sim.simulate(3);
    assert_eq!(sim.num_agents(), 0);
    let stats = sim.memory_stats();
    assert!(stats.pool_deallocations > 0);
    assert!(
        stats.pool_deallocations <= stats.pool_allocations,
        "{stats:?}"
    );
}

// ---- Corrupt-checkpoint injection -----------------------------------------
//
// Restore must never panic and never half-restore: truncated, bit-flipped,
// or version-mismatched checkpoints return a typed `CheckpointError` naming
// the failing section, and no `Simulation` escapes.

mod corrupt_checkpoints {
    use super::small_param;
    use biodynamo::checkpoint::{checkpoint, restore, CheckpointError, Registry, FORMAT_VERSION};
    use biodynamo::prelude::*;

    /// A small but fully featured checkpoint: agents with behaviors plus a
    /// diffusion grid, so every section is non-trivial.
    fn valid_checkpoint() -> Vec<u8> {
        let mut sim = Simulation::new(Param {
            interaction_radius: Some(12.0),
            ..small_param()
        });
        let g = sim.add_diffusion_grid(DiffusionGrid::new(
            "attractant",
            0.3,
            0.01,
            8,
            Real3::splat(0.0),
            80.0,
        ));
        for i in 0..30 {
            let uid = sim.new_uid();
            let mut cell = Cell::new(uid)
                .with_position(Real3::splat(5.0 + i as f64 * 2.0))
                .with_diameter(8.0);
            cell.base_mut().add_behavior(new_behavior_box(
                biodynamo::models::Secretion {
                    grid: g,
                    amount: 0.5,
                },
                sim.memory_manager(),
                0,
            ));
            sim.add_agent(cell);
        }
        sim.simulate(3);
        checkpoint(&sim).expect("valid checkpoint")
    }

    /// Truncation at every length in a byte-granular sweep near the front
    /// (header + section table) and a coarser sweep through the payloads:
    /// always a typed error, never a panic.
    #[test]
    fn truncated_checkpoints_return_typed_errors() {
        let reg = Registry::with_builtin_types();
        let bytes = valid_checkpoint();
        let lengths = (0..64.min(bytes.len()))
            .chain((64..bytes.len()).step_by(97))
            .chain([bytes.len() - 1]);
        for len in lengths {
            let err = restore(&bytes[..len], &reg)
                .err()
                .unwrap_or_else(|| panic!("restore of {len}-byte prefix must fail"));
            // Every prefix is either missing bytes or fails the whole-file
            // checksum; both carry the failing section's name.
            match err {
                CheckpointError::Truncated { .. } | CheckpointError::ChecksumMismatch { .. } => {}
                other => panic!("prefix len {len}: unexpected error {other}"),
            }
        }
    }

    /// A single flipped bit anywhere in the file is caught by the whole-file
    /// checksum (or, for flips inside the trailer itself, by the mismatch
    /// against the recomputed sum) — typed error, never a panic, never a
    /// half-restored simulation.
    #[test]
    fn bit_flipped_checkpoints_return_typed_errors() {
        let reg = Registry::with_builtin_types();
        let bytes = valid_checkpoint();
        for pos in (0..bytes.len()).step_by(53) {
            for bit in [0, 7] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= 1 << bit;
                let err = restore(&corrupt, &reg)
                    .err()
                    .unwrap_or_else(|| panic!("flip at byte {pos} bit {bit} must not restore"));
                match err {
                    CheckpointError::ChecksumMismatch { .. }
                    | CheckpointError::BadMagic
                    | CheckpointError::VersionMismatch { .. }
                    | CheckpointError::Malformed { .. } => {}
                    other => panic!("flip at byte {pos} bit {bit}: unexpected error {other}"),
                }
            }
        }
    }

    /// A future format version is rejected as `VersionMismatch` naming the
    /// found version — even with a valid whole-file checksum, which the
    /// writer of a future version would produce.
    #[test]
    fn version_mismatch_is_reported_by_name() {
        let reg = Registry::with_builtin_types();
        let mut bytes = valid_checkpoint();
        // Bump the version field (offset 8, u32 LE) and re-seal the file.
        let future = FORMAT_VERSION + 1;
        bytes[8..12].copy_from_slice(&future.to_le_bytes());
        let body_len = bytes.len() - 8;
        let sum = biodynamo::util::fnv1a64(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        match restore(&bytes, &reg).err().unwrap() {
            CheckpointError::VersionMismatch { found } => assert_eq!(found, future),
            other => panic!("unexpected error {other}"),
        }
    }

    /// A checkpoint from a *sharded* run, with every corruption mode aimed
    /// at its SHARDS section: a plain payload flip is caught by the section
    /// checksum; fully re-sealed corruptions (valid checksums, impossible
    /// content) are caught by the manifest validation — always a typed,
    /// section-naming error, never a panic.
    #[test]
    fn corrupt_shard_section_is_a_typed_error() {
        let reg = Registry::with_builtin_types();
        let mut sim = Simulation::new(Param {
            threads: Some(1),
            numa_domains: Some(1),
            shards: 4,
            interaction_radius: Some(12.0),
            ..Param::default()
        });
        for i in 0..40 {
            let uid = sim.new_uid();
            sim.add_agent(
                Cell::new(uid)
                    .with_position(Real3::new(i as f64 * 9.0, 0.0, 0.0))
                    .with_diameter(8.0),
            );
        }
        sim.simulate(3);
        assert!(sim.shard_manifest().is_some(), "run must have exchanged");
        let bytes = checkpoint(&sim).expect("sharded checkpoint");

        // Locate the SHRD section: tag(4) + len(8) + sum(8) + payload.
        let tag_at = bytes
            .windows(4)
            .position(|w| w == b"SHRD")
            .expect("SHRD section present");
        let payload_len =
            u64::from_le_bytes(bytes[tag_at + 4..tag_at + 12].try_into().unwrap()) as usize;
        let payload_at = tag_at + 20;
        assert!(
            payload_len > 8,
            "a sharded run's manifest carries ranges and counts"
        );

        // Re-seals section checksum and file trailer after a payload edit.
        let reseal = |mut b: Vec<u8>| {
            let sum = biodynamo::util::fnv1a64(&b[payload_at..payload_at + payload_len]);
            b[tag_at + 12..tag_at + 20].copy_from_slice(&sum.to_le_bytes());
            let body_len = b.len() - 8;
            let trailer = biodynamo::util::fnv1a64(&b[..body_len]);
            b[body_len..].copy_from_slice(&trailer.to_le_bytes());
            b
        };

        // 1. Plain payload flip: the file/section checksums catch it.
        let mut flipped = bytes.clone();
        flipped[payload_at + 3] ^= 0x40;
        match restore(&flipped, &reg).err().unwrap() {
            CheckpointError::ChecksumMismatch { .. } => {}
            other => panic!("payload flip: unexpected error {other}"),
        }

        // 2. Re-sealed impossible shard count (> MAX_SHARDS): the manifest
        //    reader rejects it by name.
        let mut bad_count = bytes.clone();
        bad_count[payload_at..payload_at + 8].copy_from_slice(&999u64.to_le_bytes());
        match restore(&reseal(bad_count), &reg).err().unwrap() {
            CheckpointError::Malformed { section, .. } => assert_eq!(section, "SHARDS"),
            CheckpointError::Truncated { section, .. } => assert_eq!(section, "SHARDS"),
            other => panic!("bad shard count: unexpected error {other}"),
        }

        // 3. Re-sealed non-contiguous ranges: first range's begin moved off
        //    zero breaks the tiling invariant.
        let mut bad_ranges = bytes.clone();
        bad_ranges[payload_at + 8..payload_at + 16].copy_from_slice(&7u64.to_le_bytes());
        match restore(&reseal(bad_ranges), &reg).err().unwrap() {
            CheckpointError::Malformed { section, .. } => assert_eq!(section, "SHARDS"),
            other => panic!("broken ranges: unexpected error {other}"),
        }
    }

    /// Flipping a payload byte *and* re-sealing both the section checksum
    /// and the file trailer defeats the checksums by construction — but a
    /// semantically impossible value still fails with a typed, named error
    /// instead of a panic or a half-restored simulation.
    #[test]
    fn resealed_semantic_corruption_still_fails_typed() {
        let reg = Registry::with_builtin_types();
        let bytes = valid_checkpoint();
        // Zero out the section count: a structurally valid file with no
        // sections must report the first missing section by name.
        let mut corrupt = bytes.clone();
        corrupt.truncate(25); // magic + version + kind + base id + count
        corrupt[21..25].copy_from_slice(&0u32.to_le_bytes());
        let sum = biodynamo::util::fnv1a64(&corrupt);
        corrupt.extend_from_slice(&sum.to_le_bytes());
        match restore(&corrupt, &reg).err().unwrap() {
            CheckpointError::MissingSection { section } => assert_eq!(section, "PARAM"),
            other => panic!("unexpected error {other}"),
        }
    }
}

// ---- Supervised-recovery conformance ---------------------------------------
//
// The contract of the supervised runtime: a run with injected faults,
// executed under the SupervisedRunner, finishes **bitwise identical** to the
// same run without faults — rollback + deterministic replay erases the
// fault entirely (as long as no degradation is applied).

mod supervised_recovery {
    use biodynamo::checkpoint::{
        Degradation, RecoveryPolicy, RingPolicy, SupervisedRunner, SupervisorError,
    };
    use biodynamo::core::testing::{assert_identical, fingerprint, first_divergence};
    use biodynamo::models::all_models;
    use biodynamo::prelude::*;
    use proptest::prelude::*;

    const MODEL: &str = "cell_clustering";
    const SCALE: usize = 80;
    const ITERATIONS: u64 = 12;

    fn mk_param() -> Param {
        Param {
            threads: Some(2),
            numa_domains: Some(2),
            seed: 7331,
            health: Some(HealthPolicy::every(2)),
            ..Param::default()
        }
    }

    fn reference() -> Simulation {
        let model = biodynamo::models::model_by_name(MODEL, SCALE).unwrap();
        let mut sim = model.build(mk_param());
        sim.simulate(ITERATIONS as usize);
        sim
    }

    fn supervised(plan: FaultPlan, policy: RecoveryPolicy) -> SupervisedRunner {
        let model = biodynamo::models::model_by_name(MODEL, SCALE).unwrap();
        let mut sim = model.build(mk_param());
        sim.set_fault_plan(plan);
        SupervisedRunner::new(sim, policy)
    }

    fn small_ring() -> RingPolicy {
        RingPolicy {
            interval: 3,
            depth: 2,
            full_every: 2,
        }
    }

    #[test]
    fn op_panic_recovers_bitwise() {
        let plan =
            FaultPlan::new().push(FaultSite::BeforeOp("agent_ops".into()), 7, FaultKind::Panic);
        let mut runner = supervised(
            plan,
            RecoveryPolicy {
                ring: small_ring(),
                ..RecoveryPolicy::default()
            },
        );
        let report = runner.run(ITERATIONS).unwrap();
        assert_eq!(report.panics_caught, 1);
        assert_eq!(report.attempts, 1);
        assert_eq!(report.succeeded, 1);
        assert_identical(
            &fingerprint(&reference()),
            &fingerprint(runner.sim()),
            "op panic",
        );
        // Recovery activity is visible in the engine stats (satellite: bench
        // reports carry these fields).
        let stats = runner.sim().stats();
        assert_eq!(stats.recoveries_attempted, 1);
        assert_eq!(stats.recoveries_succeeded, 1);
        assert!(stats.health_checks_run > 0);
    }

    #[test]
    fn grid_rebuild_panic_recovers_bitwise() {
        let plan = FaultPlan::new().push(FaultSite::GridRebuild, 5, FaultKind::Panic);
        let mut runner = supervised(
            plan,
            RecoveryPolicy {
                ring: small_ring(),
                ..RecoveryPolicy::default()
            },
        );
        let report = runner.run(ITERATIONS).unwrap();
        assert_eq!(report.panics_caught, 1);
        assert_identical(
            &fingerprint(&reference()),
            &fingerprint(runner.sim()),
            "grid rebuild panic",
        );
    }

    #[test]
    fn nan_position_write_recovers_bitwise() {
        let plan = FaultPlan::new().push(
            FaultSite::BeforeOp("environment_update".into()),
            6,
            FaultKind::NanPosition { agent_index: 11 },
        );
        let mut runner = supervised(
            plan,
            RecoveryPolicy {
                ring: small_ring(),
                ..RecoveryPolicy::default()
            },
        );
        let report = runner.run(ITERATIONS).unwrap();
        assert!(report.violations_handled >= 1, "{report:?}");
        assert_eq!(report.succeeded, report.attempts);
        assert_identical(
            &fingerprint(&reference()),
            &fingerprint(runner.sim()),
            "nan position",
        );
    }

    #[test]
    fn checkpoint_bit_flip_falls_back_to_older_point() {
        let plan = FaultPlan::new()
            .push(
                FaultSite::CheckpointCapture,
                6,
                FaultKind::CheckpointBitFlip { byte: 321 },
            )
            .push(FaultSite::BeforeOp("agent_ops".into()), 8, FaultKind::Panic);
        let mut runner = supervised(
            plan,
            RecoveryPolicy {
                ring: small_ring(),
                ..RecoveryPolicy::default()
            },
        );
        let report = runner.run(ITERATIONS).unwrap();
        assert_eq!(report.attempts, 1);
        // The corrupt iteration-6 capture was dropped; rollback landed on
        // an older intact point.
        assert!(report.recoveries[0].restored_from < 6, "{report:?}");
        assert_identical(
            &fingerprint(&reference()),
            &fingerprint(runner.sim()),
            "bit flip",
        );
    }

    #[test]
    fn delta_gap_replays_longer_but_stays_conformant() {
        let plan = FaultPlan::new()
            .push(FaultSite::CheckpointCapture, 6, FaultKind::DeltaGap)
            .push(FaultSite::BeforeOp("agent_ops".into()), 8, FaultKind::Panic);
        let mut runner = supervised(
            plan,
            RecoveryPolicy {
                ring: small_ring(),
                ..RecoveryPolicy::default()
            },
        );
        let report = runner.run(ITERATIONS).unwrap();
        assert_eq!(report.attempts, 1);
        // The iteration-6 capture was skipped, so rollback lands on 3.
        assert_eq!(report.recoveries[0].restored_from, 3);
        assert_identical(
            &fingerprint(&reference()),
            &fingerprint(runner.sim()),
            "delta gap",
        );
    }

    #[test]
    fn exhausted_budget_returns_typed_error() {
        let mut plan = FaultPlan::new();
        for it in 2..ITERATIONS {
            plan = plan.push(
                FaultSite::BeforeOp("agent_ops".into()),
                it,
                FaultKind::Panic,
            );
        }
        let mut runner = supervised(
            plan,
            RecoveryPolicy {
                ring: small_ring(),
                max_attempts: 3,
                degradations: Vec::new(),
            },
        );
        match runner.run(ITERATIONS).unwrap_err() {
            SupervisorError::BudgetExhausted { attempts, .. } => assert_eq!(attempts, 3),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn degradation_ladder_escalates_in_order() {
        // Three failures of the same window: plain retry, then ladder rung
        // one, then rung two.
        let site = || FaultSite::BeforeOp("agent_ops".into());
        let plan = FaultPlan::new()
            .push(site(), 5, FaultKind::Panic)
            .push(site(), 5, FaultKind::Panic)
            .push(site(), 5, FaultKind::Panic);
        let mut runner = supervised(
            plan,
            RecoveryPolicy {
                ring: small_ring(),
                max_attempts: 8,
                degradations: vec![
                    Degradation::DisableStaticDetection,
                    Degradation::UseBruteEnvironment,
                ],
            },
        );
        let report = runner.run(ITERATIONS).unwrap();
        assert_eq!(report.attempts, 3);
        assert_eq!(report.recoveries[0].degradation, None);
        assert_eq!(
            report.recoveries[1].degradation,
            Some(Degradation::DisableStaticDetection)
        );
        assert_eq!(
            report.recoveries[2].degradation,
            Some(Degradation::UseBruteEnvironment)
        );
        assert!(!runner.sim().param().detect_static_agents);
        assert_eq!(runner.sim().environment_name(), "brute_force");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Random (model, fault site, fault iteration, ring geometry)
        /// tuples: the supervised run must recover cleanly, and — whenever
        /// the engine itself is run-to-run reproducible for that model at
        /// this configuration — finish bitwise identical to the undisturbed
        /// reference.
        #[test]
        fn prop_supervised_recovery_conforms(
            model_idx in 0usize..6,
            site_idx in 0usize..4,
            fault_iteration in 1u64..8,
            depth in 1usize..4,
            interval in 1u64..5,
        ) {
            let iterations = 10u64;
            let mk_param = || Param {
                threads: Some(2),
                numa_domains: Some(2),
                seed: 1009,
                health: Some(HealthPolicy::every(2)),
                ..Param::default()
            };
            let build = |plan: Option<FaultPlan>| {
                let models = all_models(60);
                let mut sim = models[model_idx].build(mk_param());
                if let Some(p) = plan {
                    sim.set_fault_plan(p);
                }
                sim
            };
            let site = match site_idx {
                0 => FaultSite::BeforeOp("agent_ops".into()),
                1 => FaultSite::BeforeOp("environment_update".into()),
                2 => FaultSite::GridRebuild,
                _ => FaultSite::CheckpointCapture,
            };
            // Alternate fault kinds by iteration parity; capture-site faults
            // get capture-specific kinds.
            let kind = match (site_idx, fault_iteration % 2) {
                (3, 0) => FaultKind::DeltaGap,
                (3, _) => FaultKind::CheckpointBitFlip { byte: 97 },
                (_, 0) => FaultKind::Panic,
                _ => FaultKind::NanPosition { agent_index: fault_iteration as usize * 7 },
            };
            let plan = FaultPlan::new().push(site, fault_iteration, kind);

            let mut reference = build(None);
            reference.simulate(iterations as usize);
            let mut reference2 = build(None);
            reference2.simulate(iterations as usize);
            let reproducible =
                first_divergence(&fingerprint(&reference), &fingerprint(&reference2)).is_none();

            let mut runner = SupervisedRunner::new(
                build(Some(plan)),
                RecoveryPolicy {
                    ring: RingPolicy { interval, depth, full_every: 2 },
                    max_attempts: 8,
                    degradations: Vec::new(),
                },
            );
            let report = runner.run(iterations).unwrap();
            prop_assert_eq!(report.succeeded, report.attempts);
            if reproducible {
                let div =
                    first_divergence(&fingerprint(&reference), &fingerprint(runner.sim()));
                prop_assert!(div.is_none(), "diverged: {}", div.unwrap());
            }
        }
    }
}
