//! Integration: every benchmark model runs under every optimization preset
//! of the evaluation ladder (paper Figures 8–10) and stays valid.

use biodynamo::models::{all_models, BenchmarkModel};
use biodynamo::prelude::*;

fn run_with(model: &dyn BenchmarkModel, level: OptLevel, iterations: usize) -> Simulation {
    let param = Param {
        threads: Some(2),
        numa_domains: Some(2),
        ..Param::default()
    }
    .apply_opt_level(level);
    let mut sim = model.build(param);
    sim.simulate(iterations);
    sim
}

fn assert_valid(model: &dyn BenchmarkModel, sim: &Simulation, level: OptLevel) {
    assert!(
        sim.num_agents() > 0,
        "{} @ {level:?}: agents must survive",
        model.name()
    );
    sim.for_each_agent(|_, a| {
        assert!(
            a.position().is_finite(),
            "{} @ {level:?}: non-finite position",
            model.name()
        );
        assert!(
            a.diameter() >= 0.0 && a.diameter().is_finite(),
            "{} @ {level:?}: bad diameter",
            model.name()
        );
    });
    for (name, value) in model.validate(sim) {
        assert!(
            value.is_finite(),
            "{} @ {level:?}: metric {name} is not finite",
            model.name()
        );
    }
}

#[test]
fn every_model_runs_under_every_preset() {
    for model in all_models(150) {
        for level in OptLevel::ALL {
            let sim = run_with(model.as_ref(), level, 8);
            assert_valid(model.as_ref(), &sim, level);
        }
    }
}

#[test]
fn presets_preserve_proliferation_population() {
    // Cell division in the proliferation model depends only on per-agent
    // growth, so the final population must be identical across the entire
    // optimization ladder (the optimizations must not change semantics).
    let model = biodynamo::models::CellProliferation::new(125);
    let mut counts = Vec::new();
    for level in OptLevel::ALL {
        // Growth rate 30 µm³/step needs ~31 steps to reach the division
        // threshold from diameter 10, so run past that point.
        let sim = run_with(&model, level, 36);
        counts.push((level, sim.num_agents()));
    }
    let first = counts[0].1;
    assert!(first > 125, "divisions must have happened: {first}");
    for (level, count) in counts {
        assert_eq!(count, first, "population diverged at {level:?}");
    }
}

#[test]
fn oncology_removals_work_under_both_commit_paths() {
    // Parallel agent removal (paper Section 3.2, Figure 1) must agree with
    // the serial commit path on *which* agents die: same seed, same uids.
    let model = biodynamo::models::Oncology::new(200);
    let collect = |parallel: bool| -> Vec<u64> {
        let mut param = Param {
            threads: Some(2),
            numa_domains: Some(2),
            ..Param::default()
        };
        param.parallel_add_remove = parallel;
        // Keep forces out of the picture so crowding counts are identical.
        param.enable_mechanics = false;
        let mut sim = model.build(param);
        sim.simulate(10);
        let mut uids: Vec<u64> = Vec::new();
        sim.for_each_agent(|_, a| uids.push(a.uid().0));
        uids.sort_unstable();
        uids
    };
    let serial = collect(false);
    let parallel = collect(true);
    assert_eq!(serial, parallel);
}

#[test]
fn static_detection_skips_forces_in_static_lattice() {
    // A lattice of well-separated cells never moves; the detection mechanism
    // (paper Section 5) must declare it static and skip force calculations.
    let mut param = Param {
        threads: Some(2),
        numa_domains: Some(1),
        detect_static_agents: true,
        ..Param::default()
    };
    param.simulation_time_step = 0.1;
    let mut sim = Simulation::new(param);
    for x in 0..5 {
        for y in 0..5 {
            let uid = sim.new_uid();
            sim.add_agent(
                Cell::new(uid)
                    .with_position(Real3::new(x as f64 * 40.0, y as f64 * 40.0, 0.0))
                    .with_diameter(10.0),
            );
        }
    }
    sim.simulate(10);
    let stats = sim.stats();
    assert!(
        stats.static_skipped > 0,
        "separated lattice must become static: {stats:?}"
    );
    // Nothing moved.
    sim.for_each_agent(|_, a| {
        assert!(a.position().x() % 40.0 < 1e-9);
    });
}

#[test]
fn neuroscience_static_detection_reduces_force_work() {
    let model = biodynamo::models::Neuroscience::new(30);
    let forces = |detect: bool| {
        let mut param = Param {
            threads: Some(2),
            numa_domains: Some(2),
            ..Param::default()
        };
        param.detect_static_agents = detect;
        let mut sim = model.build(param);
        sim.simulate(25);
        sim.stats()
    };
    let without = forces(false);
    let with = forces(true);
    assert_eq!(without.static_skipped, 0);
    assert!(with.static_skipped > 0, "{with:?}");
    assert!(
        with.force_calculations < without.force_calculations,
        "static detection must reduce force work: {} vs {}",
        with.force_calculations,
        without.force_calculations
    );
}

#[test]
fn characteristics_are_observable() {
    // Table 1's dynamic claims must be observable in actual runs. Each
    // model's default iteration count is its own "long enough" horizon
    // (proliferation needs ~31 steps before the first division).
    for model in all_models(200) {
        let c = model.characteristics();
        let sim = run_with(
            model.as_ref(),
            OptLevel::SortExtraMemory,
            model.default_iterations(),
        );
        let stats = sim.stats();
        assert_eq!(
            c.creates_agents,
            stats.agents_added > 0,
            "{}: creates_agents claim",
            model.name()
        );
        assert_eq!(
            c.deletes_agents,
            stats.agents_removed > 0,
            "{}: deletes_agents claim",
            model.name()
        );
    }
}
