//! Integration: the first-class Operation/Scheduler API and the
//! `Simulation::builder()` construction path — op ordering, frequency
//! semantics, introspection/timing, and builder defaults.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use biodynamo::prelude::*;

/// An operation that appends `(name, iteration)` to a shared log.
struct LogOp {
    name: String,
    kind: OpKind,
    frequency: u64,
    log: Arc<Mutex<Vec<(String, u64)>>>,
}

impl Operation for LogOp {
    fn name(&self) -> &str {
        &self.name
    }
    fn kind(&self) -> OpKind {
        self.kind
    }
    fn frequency(&self) -> u64 {
        self.frequency
    }
    fn run(&mut self, ctx: &mut SimulationCtx<'_>) {
        self.log
            .lock()
            .unwrap()
            .push((self.name.clone(), ctx.iteration()));
    }
}

fn log_op(name: &str, kind: OpKind, frequency: u64, log: &Arc<Mutex<Vec<(String, u64)>>>) -> LogOp {
    LogOp {
        name: name.to_string(),
        kind,
        frequency,
        log: log.clone(),
    }
}

fn tiny_sim() -> Simulation {
    let mut sim = Simulation::builder().threads(2).numa_domains(2).build();
    let mut rng = SimRng::new(3);
    for _ in 0..40 {
        let uid = sim.new_uid();
        sim.add_agent(
            Cell::new(uid)
                .with_position(rng.point_in_cube(0.0, 80.0))
                .with_diameter(8.0),
        );
    }
    sim
}

#[test]
fn builder_defaults_match_param_default() {
    let sim = Simulation::builder().build();
    let p = sim.param();
    let d = Param::default();
    assert_eq!(p.seed, d.seed);
    assert_eq!(p.environment, d.environment);
    assert_eq!(p.interaction_radius, d.interaction_radius);
    assert_eq!(p.simulation_time_step, d.simulation_time_step);
    assert_eq!(p.enable_mechanics, d.enable_mechanics);
    assert_eq!(p.detect_static_agents, d.detect_static_agents);
    assert_eq!(p.agent_sort_frequency, d.agent_sort_frequency);
    assert_eq!(p.sort_curve, d.sort_curve);
    assert_eq!(p.parallel_add_remove, d.parallel_add_remove);
    assert_eq!(p.numa_aware_iteration, d.numa_aware_iteration);
    assert_eq!(p.use_pool_allocator, d.use_pool_allocator);
    assert_eq!(p.threads, d.threads);
    assert_eq!(p.iteration_block_size, d.iteration_block_size);
}

#[test]
fn default_pipeline_is_algorithm_1() {
    let sim = Simulation::builder().threads(1).build();
    assert_eq!(
        sim.scheduler().op_names(),
        vec![
            "snapshot",
            "halo_exchange",
            "environment_update",
            "agent_ops",
            "diffusion",
            "teardown",
            "agent_sorting"
        ]
    );
    // Sorting defaults to off (Param::default has no sort frequency)…
    assert!(!sim.scheduler().is_enabled("agent_sorting"));
    // …while a sorted configuration maps the frequency onto the op.
    let sorted = Simulation::builder()
        .threads(1)
        .sort_frequency(Some(7))
        .build();
    assert_eq!(sorted.scheduler().frequency("agent_sorting"), Some(7));
    assert!(sorted.scheduler().is_enabled("agent_sorting"));
}

#[test]
fn custom_op_runs_at_configured_frequency() {
    let log = Arc::new(Mutex::new(Vec::new()));
    let mut sim = Simulation::builder()
        .threads(2)
        .operation(log_op("every3", OpKind::Standalone, 3, &log))
        .build();
    let uid = sim.new_uid();
    sim.add_agent(Cell::new(uid).with_diameter(10.0));
    sim.simulate(10);
    // Frequency-N ops run on iteration multiples of N: 3, 6, 9.
    let iterations: Vec<u64> = log.lock().unwrap().iter().map(|(_, i)| *i).collect();
    assert_eq!(iterations, vec![3, 6, 9]);
    // The scheduler accounted each run.
    let info = sim
        .scheduler()
        .ops()
        .into_iter()
        .find(|o| o.name == "every3")
        .expect("op registered");
    assert_eq!(info.runs, 3);
    assert_eq!(info.frequency, 3);
    assert_eq!(info.kind, OpKind::Standalone);
}

#[test]
fn ops_execute_in_kind_order() {
    let log = Arc::new(Mutex::new(Vec::new()));
    // Register deliberately out of order; kinds must still group correctly.
    let mut sim = Simulation::builder()
        .threads(1)
        .operation(log_op("user_post", OpKind::Post, 1, &log))
        .operation(log_op("user_pre", OpKind::Pre, 1, &log))
        .operation(log_op("user_standalone", OpKind::Standalone, 1, &log))
        .operation(log_op("user_agent", OpKind::Agent, 1, &log))
        .build();
    let uid = sim.new_uid();
    sim.add_agent(Cell::new(uid).with_diameter(10.0));
    sim.step();
    let order: Vec<String> = log.lock().unwrap().iter().map(|(n, _)| n.clone()).collect();
    assert_eq!(
        order,
        vec!["user_pre", "user_agent", "user_standalone", "user_post"]
    );
    // User ops land at the end of their kind group, after the built-ins.
    let names = sim.scheduler().op_names();
    let pos = |n: &str| names.iter().position(|x| x == n).unwrap();
    assert!(pos("snapshot") < pos("environment_update"));
    assert!(pos("environment_update") < pos("user_pre"));
    assert!(pos("agent_ops") < pos("user_agent"));
    assert!(pos("diffusion") < pos("user_standalone"));
    assert!(pos("user_standalone") < pos("teardown"));
    assert!(pos("agent_sorting") < pos("user_post"));
}

#[test]
fn scheduler_retimes_and_removes_ops() {
    let log = Arc::new(Mutex::new(Vec::new()));
    let mut sim = Simulation::builder()
        .threads(1)
        .operation(log_op("probe", OpKind::Standalone, 1, &log))
        .build();
    sim.simulate(2); // runs at 1, 2
    assert!(sim.scheduler_mut().set_frequency("probe", 4));
    sim.simulate(6); // now due at 4, 8
    let iterations: Vec<u64> = log.lock().unwrap().iter().map(|(_, i)| *i).collect();
    assert_eq!(iterations, vec![1, 2, 4, 8]);

    assert!(sim.scheduler_mut().remove_op("probe"));
    assert!(!sim.scheduler().contains("probe"));
    sim.simulate(4);
    assert_eq!(log.lock().unwrap().len(), 4, "removed op must not run");

    // Disabling a built-in keeps it registered but skipped.
    assert!(sim.scheduler_mut().set_enabled("diffusion", false));
    sim.simulate(1);
    assert!(sim.scheduler().contains("diffusion"));
}

#[test]
fn anchored_insertion_controls_exact_position() {
    let log = Arc::new(Mutex::new(Vec::new()));
    let mut sim = Simulation::builder().threads(1).build();
    assert!(sim
        .scheduler_mut()
        .add_op_before("teardown", log_op("before_teardown", OpKind::Post, 1, &log)));
    assert!(sim
        .scheduler_mut()
        .add_op_after("snapshot", log_op("after_snapshot", OpKind::Pre, 1, &log)));
    let names = sim.scheduler().op_names();
    let pos = |n: &str| names.iter().position(|x| x == n).unwrap();
    assert_eq!(pos("after_snapshot"), pos("snapshot") + 1);
    assert_eq!(pos("before_teardown") + 1, pos("teardown"));
    sim.step();
    let order: Vec<String> = log.lock().unwrap().iter().map(|(n, _)| n.clone()).collect();
    assert_eq!(order, vec!["after_snapshot", "before_teardown"]);
}

#[test]
fn time_buckets_derive_from_scheduler_timings() {
    let mut sim = tiny_sim();
    sim.simulate(5);
    let buckets = sim.time_buckets();
    // The legacy Figure 5 phase names are all present…
    for name in [
        "snapshot",
        "environment_update",
        "agent_ops",
        "standalone_ops",
        "teardown",
    ] {
        assert!(buckets.get(name).is_some(), "missing bucket {name}");
    }
    // …and equal the scheduler's per-op totals (diffusion maps onto the
    // legacy standalone_ops bucket).
    let ops = sim.scheduler().ops();
    let op_total = |n: &str| ops.iter().find(|o| o.name == n).unwrap().total;
    assert_eq!(buckets.get("agent_ops"), Some(op_total("agent_ops")));
    assert_eq!(buckets.get("standalone_ops"), Some(op_total("diffusion")));
    // Sorting is disabled by default: never ran, no bucket.
    assert!(buckets.get("agent_sorting").is_none());
}

#[test]
fn op_added_from_inside_an_op_takes_effect_next_iteration() {
    let counter = Arc::new(AtomicUsize::new(0));
    let c = counter.clone();
    let mut sim = Simulation::builder().threads(1).build();
    let mut registered = false;
    sim.add_standalone_op(
        "registrar",
        1,
        Box::new(move |sim| {
            if !registered {
                registered = true;
                let c = c.clone();
                sim.add_standalone_op(
                    "late",
                    1,
                    Box::new(move |_| {
                        c.fetch_add(1, Ordering::Relaxed);
                    }),
                );
            }
        }),
    );
    sim.simulate(3);
    // Registered during iteration 1 → runs on iterations 2 and 3.
    assert_eq!(counter.load(Ordering::Relaxed), 2);
    assert!(sim.scheduler().contains("late"));
}

#[test]
fn in_op_edits_are_deferred_to_the_next_iteration() {
    // An operation re-timing another op (and disabling a built-in) from
    // inside its run: the edits must be accepted and applied for the next
    // iteration, even though the main op list is detached while it runs.
    struct Retimer;
    impl Operation for Retimer {
        fn name(&self) -> &str {
            "retimer"
        }
        fn kind(&self) -> OpKind {
            OpKind::Standalone
        }
        fn run(&mut self, ctx: &mut SimulationCtx<'_>) {
            if ctx.iteration() == 1 {
                assert!(ctx.scheduler_mut().set_frequency("probe", 3));
                assert!(ctx.scheduler_mut().set_enabled("diffusion", false));
            }
        }
    }
    let log = Arc::new(Mutex::new(Vec::new()));
    let mut sim = Simulation::builder()
        .threads(1)
        .operation(Retimer)
        .operation(log_op("probe", OpKind::Post, 1, &log))
        .build();
    sim.simulate(6);
    // probe ran every iteration until the edit landed (end of iteration 1),
    // then only on multiples of 3.
    let iterations: Vec<u64> = log.lock().unwrap().iter().map(|(_, i)| *i).collect();
    assert_eq!(iterations, vec![1, 3, 6]);
    assert!(!sim.scheduler().is_enabled("diffusion"));
    assert_eq!(sim.scheduler().frequency("probe"), Some(3));
}

#[test]
fn panicking_op_leaves_pipeline_intact() {
    struct Exploder;
    impl Operation for Exploder {
        fn name(&self) -> &str {
            "exploder"
        }
        fn kind(&self) -> OpKind {
            OpKind::Standalone
        }
        fn frequency(&self) -> u64 {
            2
        }
        fn run(&mut self, _ctx: &mut SimulationCtx<'_>) {
            panic!("op exploded");
        }
    }
    let mut sim = tiny_sim();
    sim.scheduler_mut().add_op(Exploder);
    let ops_before = sim.scheduler().num_ops();
    sim.step(); // iteration 1: exploder not due
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.step()));
    assert!(caught.is_err(), "op panic must reach the caller");
    // The pipeline survives the unwind: all ops still registered, removal
    // of the faulty op works, and stepping continues normally.
    assert_eq!(sim.scheduler().num_ops(), ops_before);
    assert!(sim.scheduler_mut().remove_op("exploder"));
    sim.simulate(3);
    assert_eq!(sim.iteration(), 5);
    assert_eq!(sim.num_agents(), 40);
}

#[test]
fn lazy_grid_lists_follow_scheduler_capability_hint() {
    // Dense cloud (few boxes per agent) so the SoA cache is built.
    let mut sim = Simulation::builder().threads(2).numa_domains(2).build();
    let mut rng = SimRng::new(5);
    for _ in 0..60 {
        let uid = sim.new_uid();
        sim.add_agent(
            Cell::new(uid)
                .with_position(rng.point_in_cube(0.0, 20.0))
                .with_diameter(8.0),
        );
    }

    // Default pipeline: no due operation requires the linked lists, so the
    // lazy rebuild skips them and serves everything from the SoA cache.
    sim.step();
    let grid = sim.environment().as_uniform_grid().unwrap();
    assert!(grid.soa_active(), "dense cloud builds the SoA cache");
    assert!(
        !grid.lists_active(),
        "no consumer requested the lists; the CAS insertion must be skipped"
    );

    // An operation that declares `requires_box_lists` flips the hint: the
    // next rebuild materializes the lists and `box_head`/`successor` work.
    struct ListWalker {
        visited: Arc<AtomicUsize>,
    }
    impl Operation for ListWalker {
        fn name(&self) -> &str {
            "list_walker"
        }
        fn kind(&self) -> OpKind {
            OpKind::Standalone
        }
        fn requires_box_lists(&self) -> bool {
            true
        }
        fn run(&mut self, ctx: &mut SimulationCtx<'_>) {
            let grid = ctx.environment().as_uniform_grid().unwrap();
            assert!(grid.lists_active(), "scheduler must request the lists");
            let mut n = 0;
            for flat in 0..grid.num_boxes() {
                let mut cur = grid.box_head(flat);
                while let Some(i) = cur {
                    n += 1;
                    cur = grid.successor(i);
                }
            }
            self.visited.store(n, Ordering::Relaxed);
        }
    }
    let visited = Arc::new(AtomicUsize::new(0));
    sim.scheduler_mut().add_op(ListWalker {
        visited: Arc::clone(&visited),
    });
    sim.step();
    assert_eq!(visited.load(Ordering::Relaxed), sim.num_agents());

    // Removing the consumer drops the capability request again.
    assert!(sim.scheduler_mut().remove_op("list_walker"));
    sim.step();
    let grid = sim.environment().as_uniform_grid().unwrap();
    assert!(grid.soa_active() && !grid.lists_active());

    // A consumer appearing BETWEEN rebuilds of a re-timed environment
    // pipeline forces one extra rebuild so its first run sees the lists.
    sim.scheduler_mut().set_frequency("environment_update", 5);
    sim.step(); // lazy rebuild not due; current build has no lists
    let visited2 = Arc::new(AtomicUsize::new(0));
    sim.scheduler_mut().add_op(ListWalker {
        visited: Arc::clone(&visited2),
    });
    sim.step(); // environment_update not due → forced rebuild with lists
    assert_eq!(visited2.load(Ordering::Relaxed), sim.num_agents());
}

#[test]
fn builder_wires_grids_force_and_environment() {
    let mut sim = Simulation::builder()
        .threads(2)
        .numa_domains(1)
        .seed(11)
        .environment(EnvironmentKind::KdTree)
        .time_step(0.5)
        .interaction_radius(12.0)
        .detect_static_agents(true)
        .force(InteractionForce::repulsive_only())
        .diffusion_grid(DiffusionGrid::new("a", 0.1, 0.0, 8, Real3::ZERO, 50.0))
        .diffusion_grid(DiffusionGrid::new("b", 0.1, 0.0, 8, Real3::ZERO, 50.0))
        .build();
    assert_eq!(sim.param().seed, 11);
    assert_eq!(sim.param().environment, EnvironmentKind::KdTree);
    assert_eq!(sim.param().simulation_time_step, 0.5);
    assert_eq!(sim.param().interaction_radius, Some(12.0));
    assert!(sim.param().detect_static_agents);
    assert_eq!(sim.environment_name(), "kd_tree");
    assert_eq!(sim.diffusion_grid(0).name(), "a");
    assert_eq!(sim.diffusion_grid(1).name(), "b");
    let uid = sim.new_uid();
    sim.add_agent(Cell::new(uid).with_diameter(10.0));
    sim.simulate(3);
    assert_eq!(sim.num_agents(), 1);
}

#[test]
fn opt_level_presets_apply_through_builder() {
    let sim = Simulation::builder()
        .threads(1)
        .opt_level(OptLevel::Standard)
        .build();
    assert_eq!(sim.param().environment, EnvironmentKind::KdTree);
    assert!(!sim.scheduler().is_enabled("agent_sorting"));

    let sim = Simulation::builder()
        .threads(1)
        .opt_level(OptLevel::MemoryLayout)
        .build();
    assert_eq!(sim.param().environment, EnvironmentKind::UniformGrid);
    assert!(sim.scheduler().is_enabled("agent_sorting"));
    assert_eq!(sim.scheduler().frequency("agent_sorting"), Some(10));
}
