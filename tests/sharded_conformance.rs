//! Differential shard-conformance suite (DESIGN: `bdm_core::sharded`).
//!
//! The sharded engine's contract is **bitwise shard-count invariance**: for
//! any shard count K, a run partitioned into K SFC-range shards with halo
//! exchange must produce a final state bitwise identical to the classic
//! single-engine run — same positions (to the bit), same uid sets, same
//! payloads, same diffusion concentrations. These tests drive every
//! benchmark model through K ∈ {1, 2, 4, 7} and compare
//! [`SimFingerprint`](biodynamo::core::testing::SimFingerprint)s, reporting
//! the *first* diverging agent and field on failure.

use biodynamo::core::testing::{fingerprint, first_divergence, SimFingerprint};
use biodynamo::models::{all_models, BenchmarkModel};
use biodynamo::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn run_sharded(model: &dyn BenchmarkModel, shards: usize, iterations: usize) -> SimFingerprint {
    let param = Param {
        threads: Some(1),
        numa_domains: Some(1),
        seed: 77,
        shards,
        ..Param::default()
    };
    let mut sim = model.build(param);
    sim.simulate(iterations);
    if shards > 1 {
        let report = sim
            .shard_report()
            .expect("sharded run must expose a shard report");
        assert_eq!(report.shards, shards, "{}", model.name());
        assert!(
            report.exchanges + report.exchange_skips >= iterations as u64,
            "{}: halo exchange must run every iteration ({} + {} < {iterations})",
            model.name(),
            report.exchanges,
            report.exchange_skips,
        );
    }
    fingerprint(&sim)
}

/// The core parity matrix: six models × K ∈ {1, 2, 4, 7}, bitwise.
#[test]
fn all_models_are_bitwise_shard_count_invariant() {
    for model in all_models(120) {
        let reference = run_sharded(model.as_ref(), 1, 10);
        assert!(
            !reference.agents.is_empty(),
            "{}: empty reference run",
            model.name()
        );
        for shards in SHARD_COUNTS {
            if shards == 1 {
                continue;
            }
            let candidate = run_sharded(model.as_ref(), shards, 10);
            if let Some(divergence) = first_divergence(&reference, &candidate) {
                panic!(
                    "{} diverges between 1 and {shards} shards: {divergence}",
                    model.name()
                );
            }
        }
    }
}

/// Sharding must compose with the optimization ladder: sorting every
/// iteration (population reordered under the shards), extra sort memory,
/// and static-agent detection.
#[test]
fn sharding_composes_with_sorting_and_static_detection() {
    for model in all_models(90) {
        let mk = |shards: usize| Param {
            threads: Some(1),
            numa_domains: Some(1),
            seed: 31,
            shards,
            agent_sort_frequency: Some(1),
            sort_use_extra_memory: true,
            detect_static_agents: true,
            ..Param::default()
        };
        let run = |shards: usize| {
            let mut sim = model.build(mk(shards));
            sim.simulate(8);
            fingerprint(&sim)
        };
        let reference = run(1);
        for shards in [2, 4] {
            let candidate = run(shards);
            if let Some(divergence) = first_divergence(&reference, &candidate) {
                panic!(
                    "{} (sorted, static detection) diverges between 1 and {shards} shards: \
                     {divergence}",
                    model.name()
                );
            }
        }
    }
}

/// Model-level observables (the per-model `validate` summaries) agree too —
/// a coarse, human-readable cross-check on top of the bitwise comparison.
#[test]
fn model_observables_are_shard_invariant() {
    for model in all_models(100) {
        let observe = |shards: usize| {
            let mut sim = model.build(Param {
                threads: Some(1),
                numa_domains: Some(1),
                seed: 13,
                shards,
                ..Param::default()
            });
            sim.simulate(model.default_iterations().min(10));
            model.validate(&sim)
        };
        let reference = observe(1);
        for shards in [4, 7] {
            assert_eq!(
                reference,
                observe(shards),
                "{}: observables diverge at {shards} shards",
                model.name()
            );
        }
    }
}

/// The parallel engine path under sharding: same thread count on both
/// sides, discrete state must match exactly (positions are bitwise too for
/// mechanics-only models whose per-agent kernels are order-independent).
#[test]
fn parallel_sharded_run_matches_parallel_single_run() {
    let model = biodynamo::models::CellClustering::new(150);
    let run = |shards: usize| {
        let param = Param {
            threads: Some(4),
            numa_domains: Some(2),
            seed: 7,
            shards,
            ..Param::default()
        };
        let mut sim = model.build(param);
        sim.simulate(10);
        fingerprint(&sim)
    };
    let reference = run(1);
    let candidate = run(4);
    if let Some(divergence) = first_divergence(&reference, &candidate) {
        panic!("cell_clustering (4 threads) diverges between 1 and 4 shards: {divergence}");
    }
}

/// Shard report bookkeeping: owned counts cover the population exactly and
/// the manifest's SFC ranges tile the full code space.
#[test]
fn shard_report_accounts_for_every_agent() {
    let model = biodynamo::models::CellClustering::new(200);
    let mut sim = model.build(Param {
        threads: Some(1),
        numa_domains: Some(1),
        shards: 4,
        ..Param::default()
    });
    sim.simulate(5);
    let n = sim.num_agents();
    let report = sim.shard_report().unwrap();
    assert_eq!(report.per_shard.len(), 4);
    let owned: usize = report.per_shard.iter().map(|s| s.owned).sum();
    assert_eq!(owned, n, "owned counts must partition the population");
    let manifest = sim.shard_manifest().unwrap();
    assert_eq!(manifest.shards, 4);
    assert_eq!(manifest.ranges[0].0, 0);
    assert_eq!(manifest.ranges[3].1, u64::MAX);
    for w in manifest.ranges.windows(2) {
        assert_eq!(w[0].1, w[1].0, "ranges must tile the code space");
    }
    assert_eq!(manifest.owned.iter().sum::<u64>(), n as u64);
}
