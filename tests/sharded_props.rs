//! Property-based shard-count invariance plus directed halo edge cases.
//!
//! The property: for *any* (model, shard count, iteration count, seed), the
//! sharded run is bitwise identical to the single-engine run. The directed
//! tests pin the halo-exchange geometry cases that random sampling is
//! unlikely to hit: agents exactly on box/range boundaries, an interaction
//! radius spanning three shards' ranges, shards left empty by a population
//! smaller than K, and the whole population collapsed into one box.

use biodynamo::core::testing::{fingerprint, first_divergence, SimFingerprint};
use biodynamo::models::all_models;
use biodynamo::prelude::*;
use proptest::prelude::*;

fn model_run(model_idx: usize, shards: usize, iterations: usize, seed: u64) -> SimFingerprint {
    let model = &all_models(70)[model_idx];
    let mut sim = model.build(Param {
        threads: Some(1),
        numa_domains: Some(1),
        seed,
        shards,
        ..Param::default()
    });
    sim.simulate(iterations);
    fingerprint(&sim)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bitwise invariance over the full configuration space.
    #[test]
    fn prop_shard_count_never_changes_results(
        model_idx in 0usize..6,
        shards in 2usize..=8,
        iterations in 1usize..=8,
        seed in 0u64..1_000_000,
    ) {
        let reference = model_run(model_idx, 1, iterations, seed);
        let candidate = model_run(model_idx, shards, iterations, seed);
        if let Some(divergence) = first_divergence(&reference, &candidate) {
            let name = all_models(70)[model_idx].name();
            prop_assert!(
                false,
                "{name} (K={shards}, iters={iterations}, seed={seed}): {divergence}"
            );
        }
    }
}

/// Builds a plain-cell simulation over explicit positions and steps it.
fn cells_run(positions: &[Real3], shards: usize, iterations: usize) -> SimFingerprint {
    let mut sim = Simulation::new(Param {
        threads: Some(1),
        numa_domains: Some(1),
        seed: 11,
        shards,
        interaction_radius: Some(10.0),
        ..Param::default()
    });
    for p in positions {
        let uid = sim.new_uid();
        sim.add_agent(Cell::new(uid).with_position(*p).with_diameter(8.0));
    }
    sim.simulate(iterations);
    fingerprint(&sim)
}

fn assert_invariant(positions: &[Real3], context: &str) {
    let reference = cells_run(positions, 1, 6);
    for shards in [2, 3, 4, 7] {
        let candidate = cells_run(positions, shards, 6);
        if let Some(divergence) = first_divergence(&reference, &candidate) {
            panic!("{context} (K={shards}): {divergence}");
        }
    }
}

/// Agents placed exactly on box-edge coordinates: the global box assignment
/// `floor((p - min) * inv)` sits on an FP knife edge there, and a shard
/// boundary between two such boxes puts the agents exactly on the SFC range
/// frontier. The pinned grid frame must keep both sides bitwise consistent.
#[test]
fn agents_on_exact_box_boundaries() {
    let mut positions = Vec::new();
    for i in 0..12 {
        for j in 0..3 {
            // Multiples of the interaction radius (box edge length 10).
            positions.push(Real3::new(i as f64 * 10.0, j as f64 * 10.0, 0.0));
        }
    }
    assert_invariant(&positions, "box-boundary agents");
}

/// A dense line where one interaction radius covers many boxes' worth of
/// agents: with K = 7 over few occupied boxes the ranges are so thin that a
/// single query sphere spans three shards — its halo must import from both
/// non-owner sides.
#[test]
fn interaction_radius_spanning_three_shards() {
    let positions: Vec<Real3> = (0..60)
        .map(|i| Real3::new(i as f64 * 2.5, 0.0, 0.0))
        .collect();
    assert_invariant(&positions, "radius spanning three shards");
}

/// Fewer agents than shards: most shards own nothing and must still build
/// (empty) grids and serve (empty) queries without perturbing the rest.
#[test]
fn population_smaller_than_shard_count() {
    let positions: Vec<Real3> = (0..3)
        .map(|i| Real3::new(i as f64 * 6.0, 0.0, 0.0))
        .collect();
    assert_invariant(&positions, "empty shards");
}

/// Every agent in one grid box: all Morton codes are equal, so one shard
/// owns everything and the others are empty ranges stacked at the top of
/// the code space.
#[test]
fn all_agents_in_one_shard() {
    let positions: Vec<Real3> = (0..20)
        .map(|i| Real3::new(1.0 + 0.1 * i as f64, 2.0, 3.0))
        .collect();
    assert_invariant(&positions, "all-in-one-shard");
}

/// Populations that collapse to a point mid-run keep working: start spread
/// out (multi-shard) and let strong attraction pull everything together —
/// the partition re-splits every structural change and must stay invariant
/// throughout.
#[test]
fn partition_tracks_collapsing_population() {
    let positions: Vec<Real3> = (0..27)
        .map(|i| {
            Real3::new(
                (i % 3) as f64 * 9.0,
                ((i / 3) % 3) as f64 * 9.0,
                (i / 9) as f64 * 9.0,
            )
        })
        .collect();
    let run = |shards: usize| {
        let mut sim = Simulation::new(Param {
            threads: Some(1),
            numa_domains: Some(1),
            seed: 3,
            shards,
            interaction_radius: Some(12.0),
            ..Param::default()
        });
        sim.set_force(InteractionForce {
            repulsion: 0.5,
            attraction: 8.0,
        });
        for p in &positions {
            let uid = sim.new_uid();
            sim.add_agent(Cell::new(uid).with_position(*p).with_diameter(10.0));
        }
        sim.simulate(12);
        fingerprint(&sim)
    };
    let reference = run(1);
    for shards in [2, 4, 7] {
        let candidate = run(shards);
        if let Some(divergence) = first_divergence(&reference, &candidate) {
            panic!("collapsing population (K={shards}): {divergence}");
        }
    }
}
