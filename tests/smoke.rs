//! Workspace smoke test: a small simulation driven end-to-end through the
//! public prelude — the exact surface the README quickstart promises. This
//! is the canary CI runs on every push; it must stay fast (a few seconds).

use biodynamo::prelude::*;

/// Static cells: the engine must hold agent count steady and keep every
/// position finite through a full scheduler run.
#[test]
fn static_cells_survive_a_run() {
    let mut sim = Simulation::new(Param {
        threads: Some(2),
        simulation_time_step: 1.0,
        ..Param::default()
    });
    for i in 0..16 {
        let uid = sim.new_uid();
        sim.add_agent(
            Cell::new(uid)
                .with_position(Real3::splat(i as f64 * 25.0))
                .with_diameter(10.0),
        );
    }
    sim.simulate(20);
    assert_eq!(sim.num_agents(), 16);
    sim.for_each_agent(|_, agent| {
        let p = agent.position();
        assert!(p[0].is_finite() && p[1].is_finite() && p[2].is_finite());
    });
}

/// A growing/dividing population must expand, deterministically per seed.
#[test]
fn proliferation_is_deterministic_across_runs() {
    fn run(seed: u64) -> usize {
        let model = biodynamo::models::CellProliferation::new(64);
        let mut sim = model.build(Param {
            threads: Some(2),
            seed,
            ..Param::default()
        });
        sim.simulate(10);
        sim.num_agents()
    }
    let a = run(42);
    let b = run(42);
    assert_eq!(a, b, "same seed must reproduce the same population");
    assert!(a >= 64, "proliferation must not lose agents");
}

/// The paper models build and step through the `BenchmarkModel` entry point
/// re-exported by the prelude.
#[test]
fn benchmark_models_step() {
    for name in ["cell_proliferation", "cell_clustering", "epidemiology"] {
        let model = biodynamo::models::model_by_name(name, 64).expect("known model");
        let mut sim = model.build(Param::default());
        sim.simulate(2);
        assert!(sim.num_agents() > 0, "{name} lost all agents");
        for (metric, value) in model.validate(&sim) {
            assert!(value.is_finite(), "{name}: metric {metric} not finite");
        }
    }
}
