//! Integration: the SoA snapshot (ISSUE 5 tentpole).
//!
//! The per-iteration snapshot is a structure of arrays gathered in one
//! sweep; these tests pin (i) bitwise equivalence between the SoA arrays
//! and an agent-by-agent AoS reference on all six benchmark models,
//! (ii) that the payload-skip fast path neither changes results nor runs
//! when a kernel declared `NeighborAccess::PAYLOADS`, and (iii) that a
//! custom `Operation` can keep the payload gather alive by declaring its
//! access.

use std::collections::BTreeMap;

use biodynamo::models::{all_models, BenchmarkModel};
use biodynamo::prelude::*;

fn param() -> Param {
    Param {
        threads: Some(2),
        numa_domains: Some(2),
        seed: 4357,
        ..Param::default()
    }
}

/// A pipeline stage that declares it reads neighbor payloads (forcing the
/// gather) without touching the simulation.
struct PayloadProbe;

impl Operation for PayloadProbe {
    fn name(&self) -> &str {
        "payload_probe"
    }
    fn kind(&self) -> OpKind {
        OpKind::Standalone
    }
    fn neighbor_access(&self) -> NeighborAccess {
        NeighborAccess::PAYLOADS
    }
    fn run(&mut self, _ctx: &mut SimulationCtx<'_>) {}
}

/// AoS reference: every agent's (position, diameter, payload) in resource
/// manager order — exactly the order the snapshot gather uses.
fn aos_reference(sim: &Simulation) -> Vec<(Real3, f64, u64)> {
    let mut out = Vec::with_capacity(sim.num_agents());
    sim.for_each_agent(|_, a| out.push((a.position(), a.diameter(), a.payload())));
    out
}

#[test]
fn soa_snapshot_matches_aos_reference_on_all_models() {
    for model in all_models(150) {
        let mut sim = model.build(param());
        // Force the payload gather so all three arrays can be compared,
        // regardless of the model's own declaration.
        sim.scheduler_mut().add_op(PayloadProbe);
        let reference = aos_reference(&sim);
        // The snapshot of iteration 1 is gathered from exactly the pre-step
        // agent state collected above.
        sim.simulate(1);
        let snap = sim.snapshot();
        assert_eq!(snap.len(), reference.len(), "{}", model.name());
        assert!(snap.payloads_gathered, "{}", model.name());
        assert_eq!(snap.payloads.len(), reference.len(), "{}", model.name());
        let mut max_diameter = 0f64;
        for (i, (pos, diameter, payload)) in reference.iter().enumerate() {
            // Bitwise: the gather copies, it must not recompute.
            assert_eq!(snap.positions[i], *pos, "{} agent {i}", model.name());
            assert_eq!(
                snap.diameters[i].to_bits(),
                diameter.to_bits(),
                "{} agent {i}",
                model.name()
            );
            assert_eq!(snap.payloads[i], *payload, "{} agent {i}", model.name());
            max_diameter = max_diameter.max(*diameter);
        }
        assert_eq!(
            snap.max_diameter.to_bits(),
            max_diameter.to_bits(),
            "{}",
            model.name()
        );
        assert_eq!(
            *snap.offsets.last().unwrap(),
            reference.len(),
            "{}",
            model.name()
        );
        assert_eq!(
            snap.memory_bytes(),
            snap.len() * (24 + 8 + 8) + snap.offsets.len() * 8
        );
    }
}

#[test]
fn payload_gather_follows_the_declared_kernel_access() {
    // Clustering kernels (secretion/chemotaxis + collision force) declare
    // no payload reads → the gather skips the array entirely.
    let model = biodynamo::models::CellClustering::new(120);
    let mut sim = model.build(param());
    sim.simulate(2);
    assert!(!sim.snapshot().payloads_gathered);
    assert!(sim.snapshot().payloads.is_empty());

    // Cell sorting's TypeAdhesion declares PAYLOADS → gathered.
    let model = biodynamo::models::CellSorting::new(120);
    let mut sim = model.build(param());
    sim.simulate(2);
    assert!(sim.snapshot().payloads_gathered);

    // Epidemiology reads payloads from a behavior with mechanics off.
    let model = biodynamo::models::Epidemiology::new(120);
    let mut sim = model.build(param());
    sim.simulate(2);
    assert!(sim.snapshot().payloads_gathered);
}

/// Snapshot of a finished simulation keyed by stable uid (as in
/// tests/determinism.rs).
fn state(sim: &Simulation) -> BTreeMap<u64, (Real3, f64, u64)> {
    let mut map = BTreeMap::new();
    sim.for_each_agent(|_, a| {
        map.insert(a.uid().0, (a.position(), a.diameter(), a.payload()));
    });
    map
}

#[test]
fn payload_skip_is_bit_identical_to_payload_gather() {
    // The fast path may only change what is gathered, never a result: a
    // model whose kernels ignore payloads must produce bitwise-identical
    // states with and without the gather.
    for threads in [1usize, 2] {
        let model = biodynamo::models::CellClustering::new(150);
        let p = || Param {
            threads: Some(threads),
            numa_domains: Some(threads),
            seed: 4357,
            ..Param::default()
        };
        let mut skipped = model.build(p());
        skipped.simulate(8);
        assert!(!skipped.snapshot().payloads_gathered);

        let mut gathered = model.build(p());
        gathered.scheduler_mut().add_op(PayloadProbe);
        gathered.simulate(8);
        assert!(gathered.snapshot().payloads_gathered);

        assert_eq!(
            state(&skipped),
            state(&gathered),
            "payload gather must be observation-only ({threads} threads)"
        );
    }
}

#[test]
fn custom_operation_reads_payloads_it_declared() {
    // An operation that reads Snapshot::payloads and declares the access:
    // the array must be there and hold the live agents' payloads.
    struct SumPayloads {
        seen: std::sync::Arc<std::sync::atomic::AtomicU64>,
    }
    impl Operation for SumPayloads {
        fn name(&self) -> &str {
            "sum_payloads"
        }
        fn kind(&self) -> OpKind {
            OpKind::Standalone
        }
        fn neighbor_access(&self) -> NeighborAccess {
            NeighborAccess::PAYLOADS
        }
        fn run(&mut self, ctx: &mut SimulationCtx<'_>) {
            let snap = ctx.sim.snapshot();
            assert!(snap.payloads_gathered);
            let sum: u64 = snap.payloads.iter().sum();
            self.seen.store(sum, std::sync::atomic::Ordering::Relaxed);
        }
    }

    let seen = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(u64::MAX));
    // Clustering would skip the gather on its own (see above); the custom
    // op's declaration must keep it alive.
    let model = biodynamo::models::CellClustering::new(100);
    let mut sim = model.build(param());
    sim.scheduler_mut()
        .add_op(SumPayloads { seen: seen.clone() });
    sim.simulate(1);
    // Types alternate 0/1 → half the agents sum to 50.
    assert_eq!(seen.load(std::sync::atomic::Ordering::Relaxed), 50);
}
