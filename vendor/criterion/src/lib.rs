//! Minimal API-compatible shim for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the benchmark-harness surface the workspace's six bench targets
//! use: `criterion_group!` / `criterion_main!`, [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BenchmarkId`], and [`BatchSize`].
//!
//! Measurement is deliberately simple: each benchmark runs `sample_size`
//! timed samples (after one warm-up call) and reports the median per-sample
//! wall time. There is no statistical analysis, plotting, or HTML report.
//! When the harness is invoked by `cargo test` (which passes `--test` to
//! `harness = false` targets), benchmarks are compiled but skipped, matching
//! the real crate's behavior.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id rendered from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the shim times one
/// invocation per sample regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine invocation.
    PerIteration,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, running one warm-up call plus `sample_size` samples.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

fn run_one(label: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::with_capacity(sample_size),
    };
    let start = Instant::now();
    f(&mut bencher);
    let total = start.elapsed();
    let median = bencher.median();
    println!(
        "{label:<50} median {median:>12.3?}   ({} samples, total {total:.3?})",
        sample_size
    );
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    enabled: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs `harness = false` bench targets with `--test`;
        // real criterion compiles-but-skips in that mode, and so does the shim.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            enabled: !test_mode,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        if self.enabled {
            let mut f = f;
            run_one(&id.label, self.sample_size, |b| f(b));
        }
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        if self.enabled {
            run_one(&id.label, self.sample_size, |b| f(b, input));
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        if self.criterion.enabled {
            let mut f = f;
            let label = format!("{}/{}", self.name, id.label);
            run_one(&label, self.sample_size, |b| f(b));
        }
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        if self.criterion.enabled {
            let label = format!("{}/{}", self.name, id.label);
            run_one(&label, self.sample_size, |b| f(b, input));
        }
        self
    }

    /// Finishes the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` function, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn force_enabled() -> Criterion {
        Criterion {
            sample_size: 3,
            enabled: true,
        }
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0usize;
        let mut c = force_enabled();
        c.bench_function("counts", |b| b.iter(|| calls += 1));
        // One warm-up + three samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn groups_and_batched_inputs() {
        let mut c = force_enabled();
        let mut seen = Vec::new();
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(2);
            group.bench_with_input(BenchmarkId::new("id", 7), &7usize, |b, &n| {
                b.iter_batched(|| n, |v| seen.push(v), BatchSize::SmallInput)
            });
            group.finish();
        }
        assert_eq!(seen, vec![7, 7, 7]);
    }

    #[test]
    fn benchmark_id_rendering() {
        assert_eq!(BenchmarkId::new("f", 32).label, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
