//! Minimal API-compatible shim for the `parking_lot` crate, backed by
//! `std::sync` primitives.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small slice of `parking_lot` it actually uses: [`Mutex`], [`RwLock`],
//! and [`Condvar`] with the non-poisoning guard-returning API. Poisoned std
//! locks are transparently recovered (`parking_lot` has no poisoning at all,
//! so recovering is the faithful translation).

use std::sync;

/// A mutual exclusion primitive, API-compatible with `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`], API-compatible with `parking_lot::MutexGuard`.
///
/// The inner `Option` is always `Some` between calls; [`Condvar::wait`] takes
/// the std guard out while blocked and puts it back before returning.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Returns a mutable reference to the underlying data (no locking needed;
    /// the `&mut self` receiver guarantees exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// A reader-writer lock, API-compatible with `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable, API-compatible with `parking_lot::Condvar`.
///
/// Unlike `std::sync::Condvar::wait`, which consumes and returns the guard,
/// `parking_lot` waits through an `&mut` borrow — emulated here by briefly
/// taking the std guard out of the [`MutexGuard`] wrapper.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, atomically releasing the mutex while waiting.
    /// Spurious wakeups are possible, exactly as with the real crate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0usize));
        let hits = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                let hits = Arc::clone(&hits);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                        hits.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
        assert_eq!(hits.load(Ordering::Relaxed), 4000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            *lock.lock() = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        t.join().unwrap();
        assert!(*ready);
    }
}
