//! Minimal API-compatible shim for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! reimplements the surface the workspace's property tests use:
//!
//! - the [`proptest!`] macro with an optional `#![proptest_config(..)]` inner
//!   attribute and `arg in strategy` bindings,
//! - [`Strategy`] with `prop_map`, ranges, tuples, [`any`], `Just`,
//!   [`collection::vec`], and the weighted [`prop_oneof!`] union,
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Sampling is deterministic: case `i` of test `name` derives its RNG from
//! a SplitMix64 hash of `(name, i)`, so failures reproduce exactly. There is
//! no shrinking — a failing case panics with the generated inputs printed by
//! the assertion itself.

pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestRng};

/// Collection strategies.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The imports `use proptest::prelude::*` is expected to provide.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Alias module mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Property-test entry point; see the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    // Internal: expand one batch of test functions under a given config.
    (@body $cfg:expr; $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @body $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @body $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Asserts a condition inside a property test (panics on failure, exactly as
/// `assert!`; the real crate's shrinking machinery is not reproduced).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Weighted union of strategies producing a common value type.
///
/// `prop_oneof![3 => a, 2 => b]` picks `a` with probability 3/5. Unweighted
/// arms default to weight 1.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}
