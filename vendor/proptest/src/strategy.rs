//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of type `Value`.
///
/// Object-safe core: only [`Strategy::sample`] lands in the vtable; the
/// combinators carry a `Sized` bound so `Box<dyn Strategy<Value = T>>` works.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// --- Ranges over primitives -----------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.uniform()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.uniform() as f32
    }
}

// --- Tuples of strategies --------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

// --- any::<T>() ------------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Finite values spanning many magnitudes (no NaN/inf; the real crate
    /// generates those too, but the workspace's properties assume finite).
    fn arbitrary(rng: &mut TestRng) -> f64 {
        let mag = (rng.below(613) as f64 - 306.0) / 10.0;
        let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
        sign * rng.uniform() * 10f64.powf(mag)
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}

impl_arbitrary_tuple!(A);
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for "any value of type `T`".
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// --- Collections -----------------------------------------------------------

/// Length specification for [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub min: usize,
    /// Exclusive upper bound.
    pub max_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_exclusive: r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

/// Strategy returned by [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

// --- Unions (prop_oneof!) --------------------------------------------------

/// Weighted union of strategies over one value type.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! needs positive total weight");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight accounting");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..10_000 {
            let a = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&a));
            let b = (1u32..=4).sample(&mut rng);
            assert!((1..=4).contains(&b));
            let c = (0.5f64..2.5).sample(&mut rng);
            assert!((0.5..2.5).contains(&c));
        }
    }

    #[test]
    fn vec_and_map_and_union() {
        let mut rng = TestRng::for_case("vec", 0);
        let strat = crate::collection::vec(0usize..10, 2..5).prop_map(|v| v.len());
        for _ in 0..1000 {
            let len = strat.sample(&mut rng);
            assert!((2..5).contains(&len));
        }
        let union = crate::prop_oneof![3 => 0usize..5, 1 => 10usize..15];
        let mut low = 0;
        for _ in 0..1000 {
            let v = union.sample(&mut rng);
            assert!((0..5).contains(&v) || (10..15).contains(&v));
            if v < 5 {
                low += 1;
            }
        }
        assert!(low > 500, "weighting should favor the first arm: {low}");
    }

    #[test]
    fn tuples_and_any() {
        let mut rng = TestRng::for_case("tuples", 0);
        let (x, y) = (0u32..4, 7i64..9).sample(&mut rng);
        assert!(x < 4 && (7..9).contains(&y));
        let _: (u32, u32, u32) = any::<(u32, u32, u32)>().sample(&mut rng);
        let f = any::<f64>().sample(&mut rng);
        assert!(f.is_finite());
    }
}
