//! Test configuration and the deterministic RNG behind the shim.

/// Configuration for a `proptest!` block (only the field the workspace
/// actually reads; the real crate has many more knobs).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// Matches the real crate's default of 256 cases.
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// SplitMix64 step.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic per-case RNG: the stream is a pure function of the test
/// name and the case index, so any failure reproduces on re-run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives the RNG for case `case` of the property named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, then mix in the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        let mut state = h ^ (case as u64).wrapping_mul(0xA076_1D64_78BD_642F);
        // Warm the stream so nearby seeds decorrelate.
        splitmix64(&mut state);
        TestRng { state }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name_and_case() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("t", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("t", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = TestRng::for_case("t", 4);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
