//! Minimal API-compatible shim for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the surface the workspace uses: [`rngs::SmallRng`]
//! implemented as the reference xoshiro256++ generator (the same algorithm
//! the real `SmallRng` uses on 64-bit targets), plus the [`Rng`], [`RngCore`]
//! and [`SeedableRng`] traits with uniform sampling for primitive types.

/// The core of a random number generator: raw random words and bytes.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type, e.g. `[u8; 32]`.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanded via SplitMix64 exactly as
    /// the real `rand` crate does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut s).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 step, used for seed expansion.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from a generator (the shim analogue of
/// sampling from the `Standard` distribution).
pub trait StandardSample {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * <$t as StandardSample>::sample(rng)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range`. Panics on an empty range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind the real `SmallRng` on 64-bit
    /// platforms. Not cryptographically secure; excellent statistical quality
    /// for simulation workloads.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is the one fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn xoshiro256pp_reference_vector() {
        // First outputs for state [1, 2, 3, 4] from the reference
        // implementation at https://prng.di.unimi.it/xoshiro256plusplus.c.
        let mut seed = [0u8; 32];
        for (i, v) in [1u64, 2, 3, 4].iter().enumerate() {
            seed[i * 8..(i + 1) * 8].copy_from_slice(&v.to_le_bytes());
        }
        let mut r = SmallRng::from_seed(seed);
        assert_eq!(r.next_u64(), 41943041);
        assert_eq!(r.next_u64(), 58720359);
        assert_eq!(r.next_u64(), 3588806011781223);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let n = r.gen_range(0usize..13);
            assert!(n < 13);
            let m = r.gen_range(5u32..=9);
            assert!((5..=9).contains(&m));
        }
    }
}
