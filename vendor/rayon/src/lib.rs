//! Minimal API-compatible shim for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! reimplements the slice of rayon the workspace uses — `par_iter`,
//! `par_chunks_mut`, `into_par_iter` over ranges, and the `map` / `fold` /
//! `reduce` / `zip` / `enumerate` / `for_each` / `collect` combinators — on
//! top of `std::thread::scope`.
//!
//! Unlike real rayon there is no work stealing: each parallel operation
//! splits its items into up to [`current_num_threads`] contiguous chunks;
//! chunks are claimed from a shared atomic cursor by the pool's workers plus
//! the calling thread. The pool is **persistent** — created lazily on the
//! first parallel call, workers park on a condvar between jobs — so repeated
//! leaf calls (`bdm_util::prefix_sum`, `bdm_diffusion`,
//! `bdm_env::uniform_grid`) no longer pay a thread spawn/join per call.
//! Semantics are preserved: each item is processed exactly once, `collect`
//! preserves order, and worker panics propagate to the caller. The engine's
//! own hot loops run on `bdm_numa`'s work-stealing pool; rayon only backs a
//! handful of leaf utilities.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Number of threads parallel operations may use: the `RAYON_NUM_THREADS`
/// environment variable (as in real rayon) or the machine's available
/// parallelism. Cached on first use — the persistent pool is sized once.
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

thread_local! {
    /// True on pool worker threads: a nested parallel call from inside a
    /// worker must run serially instead of waiting on its own pool.
    static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Type-erased job pointer. Sound because [`Pool::run`] blocks until every
/// worker reported done with the job before the referent goes out of scope.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn() + Sync + 'static));
unsafe impl Send for JobPtr {}

struct JobSlot {
    seq: u64,
    job: Option<JobPtr>,
}

struct Shared {
    slot: Mutex<JobSlot>,
    job_cv: Condvar,
    done: Mutex<usize>,
    done_cv: Condvar,
    /// First panic payload raised by a worker during the current job;
    /// re-raised on the caller thread.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// The process-wide persistent worker pool.
struct Pool {
    shared: &'static Shared,
    workers: usize,
    /// Serializes jobs: one parallel operation owns the pool at a time
    /// (concurrent callers block here and run back to back).
    run_guard: Mutex<()>,
}

impl Pool {
    /// Publishes `f` to every worker, executes it on the caller too, and
    /// blocks until all workers finished. Worker panics are re-raised on
    /// the caller after the job fully drained.
    fn run(&self, f: &(dyn Fn() + Sync)) {
        let _guard = lock(&self.run_guard);
        // Erase the lifetime: workers only dereference the pointer while
        // this function blocks waiting for them.
        let job = JobPtr(unsafe {
            std::mem::transmute::<*const (dyn Fn() + Sync), *const (dyn Fn() + Sync + 'static)>(
                f as *const _,
            )
        });
        *lock(&self.shared.done) = 0;
        {
            let mut slot = lock(&self.shared.slot);
            slot.seq += 1;
            slot.job = Some(job);
            self.shared.job_cv.notify_all();
        }
        // The caller participates; its panic must not unwind past the wait
        // below while workers still borrow the closure. While it executes
        // the job it counts as a pool participant, so a nested parallel
        // call from inside the closure degrades to serial instead of
        // deadlocking on the (non-reentrant) run guard.
        let prev = IS_POOL_WORKER.with(|w| w.replace(true));
        let caller_panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).err();
        IS_POOL_WORKER.with(|w| w.set(prev));
        let mut done = lock(&self.shared.done);
        while *done < self.workers {
            done = self
                .shared
                .done_cv
                .wait(done)
                .unwrap_or_else(|e| e.into_inner());
        }
        drop(done);
        // Do not leave a dangling pointer in the slot.
        lock(&self.shared.slot).job = None;
        let worker_panic = lock(&self.shared.panic).take();
        if let Some(payload) = caller_panic.or(worker_panic) {
            std::panic::resume_unwind(payload);
        }
    }
}

/// Locks ignoring poison: the pool's state stays consistent across panicking
/// jobs (panics are stashed and re-raised by [`Pool::run`]).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn worker_loop(shared: &'static Shared) {
    IS_POOL_WORKER.with(|w| w.set(true));
    let mut last_seq = 0u64;
    loop {
        let job = {
            let mut slot = lock(&shared.slot);
            loop {
                if slot.seq != last_seq {
                    if let Some(job) = slot.job {
                        last_seq = slot.seq;
                        break job;
                    }
                    // Stale seq bump with the job already cleared: skip it.
                    last_seq = slot.seq;
                }
                slot = shared.job_cv.wait(slot).unwrap_or_else(|e| e.into_inner());
            }
        };
        // SAFETY: `Pool::run` keeps the closure alive until all workers
        // reported done.
        let f = unsafe { &*job.0 };
        if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
            let mut first = lock(&shared.panic);
            if first.is_none() {
                *first = Some(payload);
            }
        }
        let mut done = lock(&shared.done);
        *done += 1;
        shared.done_cv.notify_all();
    }
}

/// The lazily created process-wide pool; `None` when the machine has a
/// single hardware thread or spawning failed (callers fall back to serial).
fn pool() -> Option<&'static Pool> {
    static POOL: OnceLock<Option<Pool>> = OnceLock::new();
    POOL.get_or_init(|| {
        // One worker per extra hardware thread; the caller is the final
        // executor, so worker count is parallelism - 1.
        let workers = current_num_threads().saturating_sub(1);
        if workers == 0 {
            return None;
        }
        let shared: &'static Shared = Box::leak(Box::new(Shared {
            slot: Mutex::new(JobSlot { seq: 0, job: None }),
            job_cv: Condvar::new(),
            done: Mutex::new(0),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        }));
        let mut spawned = 0;
        for i in 0..workers {
            let ok = std::thread::Builder::new()
                .name(format!("rayon-shim-{i}"))
                .spawn(move || worker_loop(shared))
                .is_ok();
            if !ok {
                break;
            }
            spawned += 1;
        }
        if spawned == 0 {
            return None;
        }
        Some(Pool {
            shared,
            workers: spawned,
            run_guard: Mutex::new(()),
        })
    })
    .as_ref()
}

/// Splits `items` into at most `current_num_threads()` contiguous chunks and
/// maps each chunk on the persistent pool (workers + the calling thread
/// claim chunks from a shared cursor); concatenation preserves order.
fn run_chunked<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 || IS_POOL_WORKER.with(|w| w.get()) {
        return items.into_iter().map(f).collect();
    }
    let Some(pool) = pool() else {
        return items.into_iter().map(f).collect();
    };
    let chunk_len = n.div_ceil(threads);
    let mut chunks: Vec<Mutex<Option<Vec<T>>>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(Mutex::new(Some(chunk)));
    }
    let results: Vec<Mutex<Option<Vec<R>>>> = (0..chunks.len()).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    pool.run(&|| loop {
        let c = cursor.fetch_add(1, Ordering::Relaxed);
        if c >= chunks.len() {
            break;
        }
        let chunk = lock(&chunks[c]).take().expect("chunk claimed once");
        let mapped: Vec<R> = chunk.into_iter().map(f).collect();
        *lock(&results[c]) = Some(mapped);
    });
    results
        .into_iter()
        .flat_map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("chunk result present")
        })
        .collect()
}

/// An eager "parallel iterator": the item list is materialized up front and
/// the terminal combinators distribute it over scoped threads.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_chunked(self.items, &f);
    }

    /// Maps every item in parallel, preserving order.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: run_chunked(self.items, f),
        }
    }

    /// Rayon-style parallel fold: each thread-chunk folds to one accumulator,
    /// yielding a parallel iterator over the per-chunk accumulators.
    pub fn fold<A, ID, F>(self, identity: ID, fold_op: F) -> ParIter<A>
    where
        A: Send,
        ID: Fn() -> A + Sync,
        F: Fn(A, T) -> A + Sync,
    {
        let n = self.items.len();
        let threads = current_num_threads().min(n).max(1);
        let chunk_len = n.div_ceil(threads).max(1);
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
        let mut it = self.items.into_iter();
        loop {
            let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }
        let accs = run_chunked(chunks, |chunk| chunk.into_iter().fold(identity(), &fold_op));
        ParIter { items: accs }
    }

    /// Reduces all items to one value. With the shim's eager model this is a
    /// sequential fold over the (already parallel-produced) items.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T,
        OP: Fn(T, T) -> T,
    {
        self.items.into_iter().fold(identity(), op)
    }

    /// Pairs items positionally with `other`, truncating to the shorter side.
    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Attaches each item's index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Collects the items, preserving order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Conversion into a [`ParIter`], mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The item type.
    type Item: Send;
    /// Converts `self` into an eager parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// `par_iter` over shared slices, mirroring `IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: Send;
    /// Returns an eager parallel iterator over `&self`'s items.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_iter_mut` over exclusive slices, mirroring `IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'a> {
    /// The borrowed item type.
    type Item: Send;
    /// Returns an eager parallel iterator over `&mut self`'s items.
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

/// Parallel chunking of exclusive slices, mirroring `ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    /// Returns an eager parallel iterator over non-overlapping mutable chunks
    /// of `chunk_size` elements (the last chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Parallel chunking of shared slices, mirroring `ParallelSlice`.
pub trait ParallelSlice<T: Sync> {
    /// Returns an eager parallel iterator over non-overlapping chunks of
    /// `chunk_size` elements (the last chunk may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

/// The traits a `use rayon::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Forces a multi-worker pool before the thread-count cache and the pool
    /// initialize, so the pool code path is exercised even on single-core
    /// machines. Every test calls this first.
    fn force_pool() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            if std::env::var("RAYON_NUM_THREADS").is_err() {
                std::env::set_var("RAYON_NUM_THREADS", "4");
            }
        });
    }

    #[test]
    fn for_each_visits_every_item_once() {
        force_pool();
        let hits: Vec<AtomicUsize> = (0..10_000).map(|_| AtomicUsize::new(0)).collect();
        (0..10_000usize).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn map_collect_preserves_order() {
        force_pool();
        let doubled: Vec<usize> = (0..5_000usize).into_par_iter().map(|i| i * 2).collect();
        let expected: Vec<usize> = (0..5_000).map(|i| i * 2).collect();
        assert_eq!(doubled, expected);
    }

    #[test]
    fn fold_reduce_matches_serial_sum() {
        force_pool();
        let total = (0..100_000usize)
            .into_par_iter()
            .fold(|| 0usize, |acc, i| acc + i)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, (0..100_000).sum());
    }

    #[test]
    fn chunks_zip_enumerate() {
        force_pool();
        let mut data = vec![1usize; 100];
        let offsets: Vec<usize> = (0..10).map(|i| i * 100).collect();
        data.par_chunks_mut(10)
            .zip(offsets.par_iter())
            .enumerate()
            .for_each(|(idx, (chunk, &off))| {
                for v in chunk.iter_mut() {
                    *v += off + idx;
                }
            });
        for (i, &v) in data.iter().enumerate() {
            let block = i / 10;
            assert_eq!(v, 1 + offsets[block] + block);
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        force_pool();
        let v: Vec<usize> = Vec::new();
        v.into_par_iter().for_each(|_| unreachable!());
        let collected: Vec<usize> = (0..0usize).into_par_iter().map(|i| i).collect();
        assert!(collected.is_empty());
    }

    #[test]
    fn pool_survives_many_consecutive_jobs() {
        force_pool();
        // The persistent pool must stay correct across back-to-back jobs
        // (the old shim spawned fresh scoped threads per call; the pool
        // reuses its workers).
        for round in 0..200usize {
            let sum: usize = (0..1_000usize)
                .into_par_iter()
                .fold(|| 0usize, |acc, i| acc + i + round)
                .reduce(|| 0, |a, b| a + b);
            assert_eq!(sum, (0..1_000).sum::<usize>() + round * 1_000);
        }
    }

    #[test]
    fn concurrent_callers_serialize_safely() {
        force_pool();
        // Multiple OS threads issuing parallel operations at once must each
        // get correct results (jobs serialize through the pool's run guard).
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    scope.spawn(move || {
                        let doubled: Vec<usize> =
                            (0..5_000usize).into_par_iter().map(|i| i * 2 + t).collect();
                        doubled.iter().enumerate().all(|(i, &v)| v == i * 2 + t)
                    })
                })
                .collect();
            for h in handles {
                assert!(h.join().expect("caller thread panicked"));
            }
        });
    }

    #[test]
    fn nested_parallel_calls_degrade_to_serial() {
        force_pool();
        // A parallel call from inside a parallel closure must not deadlock.
        let totals: Vec<usize> = (0..8usize)
            .into_par_iter()
            .map(|i| {
                (0..100usize)
                    .into_par_iter()
                    .map(|j| i + j)
                    .collect::<Vec<_>>()
                    .len()
            })
            .collect();
        assert_eq!(totals, vec![100; 8]);
    }

    #[test]
    fn panic_in_job_propagates_and_pool_survives() {
        force_pool();
        let caught = std::panic::catch_unwind(|| {
            (0..1_000usize).into_par_iter().for_each(|i| {
                if i == 567 {
                    panic!("item 567 exploded");
                }
            });
        });
        assert!(caught.is_err(), "panic must reach the caller");
        // The pool must remain fully usable afterwards.
        let sum: usize = (0..1_000usize)
            .into_par_iter()
            .fold(|| 0usize, |a, i| a + i)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(sum, (0..1_000).sum());
    }
}
