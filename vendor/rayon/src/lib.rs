//! Minimal API-compatible shim for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! reimplements the slice of rayon the workspace uses — `par_iter`,
//! `par_chunks_mut`, `into_par_iter` over ranges, and the `map` / `fold` /
//! `reduce` / `zip` / `enumerate` / `for_each` / `collect` combinators — on
//! top of `std::thread::scope`.
//!
//! Unlike real rayon there is no work-stealing pool: each parallel operation
//! splits its items into up to [`current_num_threads`] contiguous chunks and
//! runs them on freshly spawned scoped threads. That keeps semantics (each
//! item processed exactly once, `collect` preserves order) while remaining a
//! few hundred lines. The engine's own hot loops run on `bdm_numa`'s
//! work-stealing pool; rayon only backs a handful of leaf utilities.

use std::num::NonZeroUsize;

/// Number of threads parallel operations may use (the shim has no configured
/// pool, so this is the machine's available parallelism).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits `items` into at most `current_num_threads()` contiguous chunks and
/// maps each chunk on its own scoped thread; concatenation preserves order.
fn run_chunked<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    let per_chunk: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shim worker panicked"))
            .collect()
    });
    per_chunk.into_iter().flatten().collect()
}

/// An eager "parallel iterator": the item list is materialized up front and
/// the terminal combinators distribute it over scoped threads.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_chunked(self.items, &f);
    }

    /// Maps every item in parallel, preserving order.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: run_chunked(self.items, f),
        }
    }

    /// Rayon-style parallel fold: each thread-chunk folds to one accumulator,
    /// yielding a parallel iterator over the per-chunk accumulators.
    pub fn fold<A, ID, F>(self, identity: ID, fold_op: F) -> ParIter<A>
    where
        A: Send,
        ID: Fn() -> A + Sync,
        F: Fn(A, T) -> A + Sync,
    {
        let n = self.items.len();
        let threads = current_num_threads().min(n).max(1);
        let chunk_len = n.div_ceil(threads).max(1);
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
        let mut it = self.items.into_iter();
        loop {
            let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }
        let accs = run_chunked(chunks, |chunk| chunk.into_iter().fold(identity(), &fold_op));
        ParIter { items: accs }
    }

    /// Reduces all items to one value. With the shim's eager model this is a
    /// sequential fold over the (already parallel-produced) items.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T,
        OP: Fn(T, T) -> T,
    {
        self.items.into_iter().fold(identity(), op)
    }

    /// Pairs items positionally with `other`, truncating to the shorter side.
    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Attaches each item's index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Collects the items, preserving order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Conversion into a [`ParIter`], mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The item type.
    type Item: Send;
    /// Converts `self` into an eager parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// `par_iter` over shared slices, mirroring `IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: Send;
    /// Returns an eager parallel iterator over `&self`'s items.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_iter_mut` over exclusive slices, mirroring `IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'a> {
    /// The borrowed item type.
    type Item: Send;
    /// Returns an eager parallel iterator over `&mut self`'s items.
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

/// Parallel chunking of exclusive slices, mirroring `ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    /// Returns an eager parallel iterator over non-overlapping mutable chunks
    /// of `chunk_size` elements (the last chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Parallel chunking of shared slices, mirroring `ParallelSlice`.
pub trait ParallelSlice<T: Sync> {
    /// Returns an eager parallel iterator over non-overlapping chunks of
    /// `chunk_size` elements (the last chunk may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

/// The traits a `use rayon::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_visits_every_item_once() {
        let hits: Vec<AtomicUsize> = (0..10_000).map(|_| AtomicUsize::new(0)).collect();
        (0..10_000usize).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn map_collect_preserves_order() {
        let doubled: Vec<usize> = (0..5_000usize).into_par_iter().map(|i| i * 2).collect();
        let expected: Vec<usize> = (0..5_000).map(|i| i * 2).collect();
        assert_eq!(doubled, expected);
    }

    #[test]
    fn fold_reduce_matches_serial_sum() {
        let total = (0..100_000usize)
            .into_par_iter()
            .fold(|| 0usize, |acc, i| acc + i)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, (0..100_000).sum());
    }

    #[test]
    fn chunks_zip_enumerate() {
        let mut data = vec![1usize; 100];
        let offsets: Vec<usize> = (0..10).map(|i| i * 100).collect();
        data.par_chunks_mut(10)
            .zip(offsets.par_iter())
            .enumerate()
            .for_each(|(idx, (chunk, &off))| {
                for v in chunk.iter_mut() {
                    *v += off + idx;
                }
            });
        for (i, &v) in data.iter().enumerate() {
            let block = i / 10;
            assert_eq!(v, 1 + offsets[block] + block);
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        let v: Vec<usize> = Vec::new();
        v.into_par_iter().for_each(|_| unreachable!());
        let collected: Vec<usize> = (0..0usize).into_par_iter().map(|i| i).collect();
        assert!(collected.is_empty());
    }
}
